//! Pluggable scheduling policies (DESIGN.md §13).
//!
//! PR 3–8 hardcoded one scheduling policy into the worker loop:
//! owner-LIFO deques, random-start rotation over every other worker on
//! the steal path. That policy is excellent for homogeneous payloads
//! (depth-first bounds the live set; random victims spread contention)
//! and measurably blind for heterogeneous ones — a memcpy-bound task
//! and a spin-bound task cost the same to a scheduler that only sees
//! task ids. This module turns the policy into a statically-dispatched
//! trait (the PR 5/6 discipline: a generic parameter on the worker
//! loop, no `dyn` on the hot path) with four implementations:
//!
//! - [`LifoPolicy`] — **the baseline**: every hook is the identity of
//!   the pre-§13 inline code, so the default build monomorphizes to
//!   exactly the old worker loop (and is pinned to it by the fig16 /
//!   chaos CI gates). Keep it boring.
//! - [`FifoPolicy`] — the classic ablation foil: the owner drains its
//!   own deque oldest-first (via the thief end — the Chase-Lev `steal`
//!   protocol is safe from *any* thread, the owner included), which
//!   trades cache-hot depth-first execution for breadth-first fairness.
//! - [`CostAwarePolicy`] — per-task cost estimates from the traced
//!   runtime + operand footprint (§13.2); ready batches are released
//!   so the owner pops the longest-estimated task first, and the steal
//!   scan visits the most-loaded victim first using per-worker
//!   advisory load gauges.
//! - [`LocalityPolicy`] — heterogeneous worker classes (compute pool
//!   vs memory pool, §13.3) with spawn-time class routing, plus
//!   affinity domains with steal-within-your-domain-first and a
//!   cross-domain fallback (§13.4).
//!
//! # What a policy may and may not touch
//!
//! Policies sit *around* the lock-free core, never inside it: the
//! Chase-Lev protocol, the completion-ticket counter, and the parker
//! epoch are not policy surface. A policy decides *where* a ready task
//! goes ([`SchedPolicy::dispatch`]), *what* the owner runs next
//! ([`SchedPolicy::take_local`] / [`SchedPolicy::take_routed`]), and
//! *whom* to rob in what order ([`SchedPolicy::victims`]). Correctness
//! (exactly-once execution, dependency order, poison cones) is owned
//! by the executor and holds under every policy — the proptest matrix
//! in `tests/sched.rs` runs the full oracle over all four.
//!
//! Any synchronization a policy needs must come from the
//! `crate::sync` facade so the model checker sees it; `tss-lint`
//! enforces this for every file containing an `impl SchedPolicy`.

use std::collections::VecDeque;

use tss_sim::{cycles_to_ns, CachePadded};
use tss_trace::TaskTrace;
use tss_workloads::payload::task_footprint;

use crate::deque::{rotate_victims, ChaseLev};
use crate::payload::{task_class, PayloadMode, CLASS_COMPUTE, CLASS_MEMORY, NUM_CLASSES};
use crate::sync::atomic::{AtomicIsize, Ordering};
use crate::sync::Mutex;

/// The CLI menu for `--policy`, kept next to the parser it documents.
pub const SCHED_MENU: &str = "lifo|fifo|cost|locality";

/// Which scheduling policy a run uses. The executor monomorphizes the
/// worker loop per kind ([`crate::Executor::run`] matches once, at the
/// top); this enum is only the configuration-time name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Owner-LIFO + random-rotation stealing: the pre-§13 baseline.
    Lifo,
    /// Owner-FIFO (oldest-first) drain; same steal scan as LIFO.
    Fifo,
    /// Cost estimates: longest-estimated-first + load-ordered victims.
    CostAware,
    /// Worker classes + affinity domains + domain-first stealing.
    Locality,
}

impl SchedKind {
    /// CLI name → kind (see [`SCHED_MENU`]).
    pub fn parse(name: &str) -> Option<SchedKind> {
        match name {
            "lifo" => Some(SchedKind::Lifo),
            "fifo" => Some(SchedKind::Fifo),
            "cost" => Some(SchedKind::CostAware),
            "locality" => Some(SchedKind::Locality),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Lifo => "lifo",
            SchedKind::Fifo => "fifo",
            SchedKind::CostAware => "cost",
            SchedKind::Locality => "locality",
        }
    }

    /// Every kind, in ablation-harness sweep order (baseline first).
    pub fn all() -> [SchedKind; 4] {
        [SchedKind::Lifo, SchedKind::Fifo, SchedKind::CostAware, SchedKind::Locality]
    }
}

/// Tiny SplitMix64 for the steal-victim rotation (moved here from the
/// executor with the victim-selection seam; same constants, same
/// stream).
#[inline]
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scheduling policy: the pluggable seam of the worker loop.
///
/// Statically dispatched — the executor is generic over `P:
/// SchedPolicy` and `match`es the configured [`SchedKind`] exactly
/// once, outside the loop. Every default body below is the LIFO
/// baseline, so [`LifoPolicy`] overrides nothing but the victim scan
/// and the compiler folds the remaining hooks away.
///
/// Hook contract (who calls what, from which thread):
///
/// | hook           | caller                   | thread            |
/// |----------------|--------------------------|-------------------|
/// | `prepare`      | `complete` (release)     | completing worker |
/// | `dispatch`     | `complete` (per task)    | completing worker |
/// | `take_local`   | own-deque drain burst    | owner only        |
/// | `take_routed`  | idle path, before steals | any worker        |
/// | `victims`      | idle path, before park   | the scanning worker |
/// | `cross_domain` | steal accounting         | the thief         |
/// | `note_executed`| after a payload succeeds | the executing worker |
pub trait SchedPolicy: Sync + Sized {
    /// The policy's CLI / JSON name.
    const NAME: &'static str;

    /// Builds the policy's per-run state (cost columns, class routing
    /// tables). `threads`, `classes`, `domains` arrive pre-clamped by
    /// `ExecConfig` validation.
    fn new(
        trace: &TaskTrace,
        payload: PayloadMode,
        threads: usize,
        classes: usize,
        domains: usize,
    ) -> Self;

    /// Reorders a freshly released ready batch before dispatch. The
    /// batch is dispatched in order and popped LIFO, so sorting
    /// *ascending* by cost makes the owner run the costliest first.
    #[inline]
    fn prepare(&self, _ready: &mut Vec<u32>) {}

    /// Routes one ready task. Returning `true` means the task went to
    /// the completing worker's own deque `me` (the baseline); `false`
    /// means the policy routed it elsewhere (a class queue) and the
    /// caller must publish a wake so the right worker can find it.
    #[inline]
    fn dispatch(&self, _w: usize, s: u32, me: &ChaseLev) -> bool {
        me.push(s);
        true
    }

    /// Takes the owner's next task from its own deque. The baseline is
    /// LIFO `pop`; FIFO takes the thief end instead.
    #[inline]
    fn take_local(&self, _w: usize, me: &ChaseLev) -> Option<u32> {
        me.pop()
    }

    /// Takes a task the policy routed outside the deques (class
    /// queues). Called on the idle path only — a policy may lock here.
    #[inline]
    fn take_routed(&self, _w: usize) -> Option<u32> {
        None
    }

    /// Fills `buf` with the victim scan order for an idle worker `w`.
    /// `rng` is the worker's private SplitMix64 state; the baseline
    /// consumes exactly one draw per scan (when any victim exists) —
    /// [`LifoPolicy`] must preserve that to stay replay-identical.
    fn victims(&self, w: usize, rng: &mut u64, buf: &mut Vec<usize>);

    /// Whether a `w`-steals-from-`v` event crossed an affinity domain
    /// (for the `cross_steals` counter; constant `false` folds the
    /// accounting away for domain-blind policies).
    #[inline]
    fn cross_domain(&self, _w: usize, _v: usize) -> bool {
        false
    }

    /// Bookkeeping after worker `w` ran task `t` to success (load
    /// gauge decay). Advisory only — never correctness.
    #[inline]
    fn note_executed(&self, _w: usize, _t: u32) {}
}

// ---------------------------------------------------------------------
// LIFO (baseline) and FIFO
// ---------------------------------------------------------------------

/// The pre-§13 policy, verbatim: owner-LIFO deques, one random-start
/// rotation over all other workers per idle scan. Every hook is the
/// trait default except [`SchedPolicy::victims`], which reproduces the
/// old inline scan *including its rng consumption* (one draw per scan,
/// only when a victim exists) so a seeded run is schedule-identical to
/// PR 8.
pub struct LifoPolicy {
    threads: usize,
}

impl SchedPolicy for LifoPolicy {
    const NAME: &'static str = "lifo";

    fn new(
        _trace: &TaskTrace,
        _payload: PayloadMode,
        threads: usize,
        _classes: usize,
        _domains: usize,
    ) -> Self {
        LifoPolicy { threads }
    }

    #[inline]
    fn victims(&self, w: usize, rng: &mut u64, buf: &mut Vec<usize>) {
        if self.threads <= 1 {
            buf.clear();
            return;
        }
        let r = splitmix(rng);
        rotate_victims(w, self.threads, r, buf);
    }
}

/// Owner-FIFO: the owner drains its own deque oldest-first by taking
/// the *thief* end — `ChaseLev::steal` is safe from any thread, the
/// owner included (every claim is CAS-arbitrated on `top`), so this
/// needs no new deque code. Steal scan identical to LIFO.
pub struct FifoPolicy {
    threads: usize,
}

impl SchedPolicy for FifoPolicy {
    const NAME: &'static str = "fifo";

    fn new(
        _trace: &TaskTrace,
        _payload: PayloadMode,
        threads: usize,
        _classes: usize,
        _domains: usize,
    ) -> Self {
        FifoPolicy { threads }
    }

    #[inline]
    fn take_local(&self, _w: usize, me: &ChaseLev) -> Option<u32> {
        me.steal()
    }

    #[inline]
    fn victims(&self, w: usize, rng: &mut u64, buf: &mut Vec<usize>) {
        if self.threads <= 1 {
            buf.clear();
            return;
        }
        let r = splitmix(rng);
        rotate_victims(w, self.threads, r, buf);
    }
}

// ---------------------------------------------------------------------
// Cost-aware (DESIGN.md §13.2)
// ---------------------------------------------------------------------

/// Calibration constant for the memory-class cost term: estimated
/// sustained copy bandwidth in bytes per nanosecond (≈4 GB/s — the
/// conservative end of one-core memcpy on the hosts this repo has run
/// on; §13.2 derives why a 2–4× miscalibration barely moves the
/// *ordering* the policy needs).
pub const COST_BYTES_PER_NS: u64 = 4;

/// Per-task cost estimates + per-worker advisory load gauges.
///
/// The cost column is a pure function of the trace and payload mode
/// (computed once, up front): a spin-class task costs its traced
/// runtime in host-nanoseconds (scaled), a memory-class task costs its
/// operand footprint over [`COST_BYTES_PER_NS`], and free payloads
/// (noop/faulty) cost a uniform floor — under which the stable
/// `prepare` sort degenerates to the baseline dispatch order.
///
/// The load gauges are *advisory*: `dispatch` credits the worker whose
/// deque received the task, `note_executed` debits the worker that ran
/// it, and batch steals move tasks without transferring credit — so a
/// gauge can drift and even go negative (clamped at read). That is
/// fine: the gauges only bias the victim *scan order*, and every steal
/// still goes through the full validated Chase-Lev protocol. They are
/// never correctness.
pub struct CostAwarePolicy {
    threads: usize,
    /// Per-task cost estimate, host-ns (SoA column beside `runtimes`).
    cost: Vec<u64>,
    /// Per-worker outstanding-cost gauge (advisory, may drift).
    load: Vec<CachePadded<AtomicIsize>>,
}

/// The uniform cost floor: keeps every estimate nonzero so gauge
/// debits always mirror a credit.
const COST_FLOOR: u64 = 1;

/// Cost estimate for one task under `payload` (§13.2).
pub fn task_cost(payload: PayloadMode, task: &tss_trace::TaskDesc) -> u64 {
    let spin_ns = |scale: f64| (cycles_to_ns(task.runtime) * scale) as u64;
    let mem_ns = || {
        let fp = task_footprint(task);
        (fp.read_bytes + fp.write_bytes) / COST_BYTES_PER_NS
    };
    let est = match payload {
        PayloadMode::Noop | PayloadMode::Faulty { .. } => 0,
        PayloadMode::Spin { time_scale } => spin_ns(time_scale),
        PayloadMode::Memcpy => mem_ns(),
        PayloadMode::Mixed { time_scale } => {
            if task_class(payload, task) == CLASS_MEMORY {
                mem_ns()
            } else {
                spin_ns(time_scale)
            }
        }
    };
    est + COST_FLOOR
}

impl SchedPolicy for CostAwarePolicy {
    const NAME: &'static str = "cost";

    fn new(
        trace: &TaskTrace,
        payload: PayloadMode,
        threads: usize,
        _classes: usize,
        _domains: usize,
    ) -> Self {
        CostAwarePolicy {
            threads,
            cost: trace.iter().map(|t| task_cost(payload, t)).collect(),
            load: (0..threads).map(|_| CachePadded::new(AtomicIsize::new(0))).collect(),
        }
    }

    #[inline]
    fn prepare(&self, ready: &mut Vec<u32>) {
        // Ascending + stable: the owner's LIFO pop runs the costliest
        // first, and equal-cost tasks keep their release order (which
        // is what 1-worker bit-determinism pins).
        ready.sort_by_key(|&t| self.cost[t as usize]);
    }

    #[inline]
    fn dispatch(&self, w: usize, s: u32, me: &ChaseLev) -> bool {
        // Advisory gauge (see the type docs): Relaxed is sufficient
        // because no decision reading the gauge needs to observe any
        // other memory this write publishes.
        self.load[w].fetch_add(self.cost[s as usize] as isize, Ordering::Relaxed);
        me.push(s);
        true
    }

    fn victims(&self, w: usize, rng: &mut u64, buf: &mut Vec<usize>) {
        if self.threads <= 1 {
            buf.clear();
            return;
        }
        // Random rotation first (same draw cadence as the baseline,
        // so equal-gauge states still spread contention), then a
        // stable sort by descending clamped load: the most-loaded
        // victim is scanned first, ties keep the rotation.
        let r = splitmix(rng);
        rotate_victims(w, self.threads, r, buf);
        buf.sort_by_key(|&v| -self.load[v].load(Ordering::Relaxed).max(0));
    }

    #[inline]
    fn note_executed(&self, w: usize, t: u32) {
        self.load[w].fetch_sub(self.cost[t as usize] as isize, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Locality-aware (DESIGN.md §13.3–§13.4)
// ---------------------------------------------------------------------

/// Worker classes + affinity domains.
///
/// **Classes** (§13.3): workers split into a compute pool (first
/// ⌈threads/2⌉) and a memory pool (the rest); every task carries a
/// class decided at spawn from `PayloadMode` + operand footprint
/// ([`task_class`] — a dense SoA column built once, like `runtimes`).
/// `dispatch` keeps same-class tasks on the completing worker's deque
/// and routes cross-class tasks through a per-class overflow queue
/// that the right pool drains on its idle path.
///
/// **Cross-class fallback**: `take_routed` tries the worker's own
/// class queue first, then *every other* class queue. This is a
/// liveness requirement, not a tuning choice — a chaos `kill_worker`
/// run can strand an entire class (threads=2 kills the whole memory
/// pool), and a routed task must never wait for a worker that no
/// longer exists. The cost is bounded: fallback only happens on the
/// idle path of a worker with nothing better to do.
///
/// **Domains** (§13.4): workers partition into `domains` contiguous
/// blocks; an idle worker scans same-domain victims (rotated) before
/// cross-domain victims (rotated), so steal traffic stays inside a
/// domain while any domain has surplus. The cross-domain tail keeps
/// the scan *complete* — every live deque is still visited every
/// scan, which is what the termination argument (park epoch vs full
/// rescan) requires; domains reorder the scan, never truncate it.
///
/// Routing disables itself (pure domain-stealing remains) when there
/// is only one worker or one class — the queues would only add a lock
/// hop nothing can win from the other side.
pub struct LocalityPolicy {
    threads: usize,
    routing: bool,
    /// Per-task class (SoA column, [`CLASS_COMPUTE`]/[`CLASS_MEMORY`]).
    class: Vec<u8>,
    /// Per-worker class (pool membership).
    worker_class: Vec<u8>,
    /// Per-worker affinity domain (contiguous blocks).
    domain: Vec<usize>,
    /// Per-class overflow queues for cross-class routed tasks. Locked
    /// only at dispatch of a cross-class task and on the idle path.
    queues: Vec<Mutex<VecDeque<u32>>>,
}

impl SchedPolicy for LocalityPolicy {
    const NAME: &'static str = "locality";

    fn new(
        trace: &TaskTrace,
        payload: PayloadMode,
        threads: usize,
        classes: usize,
        domains: usize,
    ) -> Self {
        let classes = classes.clamp(1, NUM_CLASSES);
        let domains = domains.clamp(1, threads);
        let compute_pool = threads.div_ceil(2);
        LocalityPolicy {
            threads,
            routing: classes >= 2 && threads >= 2,
            class: trace.iter().map(|t| task_class(payload, t)).collect(),
            worker_class: (0..threads)
                .map(|w| if w < compute_pool { CLASS_COMPUTE } else { CLASS_MEMORY })
                .collect(),
            domain: (0..threads).map(|w| w * domains / threads).collect(),
            queues: (0..NUM_CLASSES).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    #[inline]
    fn dispatch(&self, w: usize, s: u32, me: &ChaseLev) -> bool {
        let c = self.class[s as usize];
        if !self.routing || c == self.worker_class[w] {
            me.push(s);
            return true;
        }
        self.queues[c as usize].lock().expect("class queue poisoned").push_back(s);
        false
    }

    fn take_routed(&self, w: usize) -> Option<u32> {
        if !self.routing {
            return None;
        }
        let own = self.worker_class[w] as usize;
        if let Some(t) = self.queues[own].lock().expect("class queue poisoned").pop_front() {
            return Some(t);
        }
        // Cross-class fallback (see the type docs: liveness, not
        // preference — a whole pool may be dead or saturated).
        (0..NUM_CLASSES)
            .filter(|&c| c != own)
            .find_map(|c| self.queues[c].lock().expect("class queue poisoned").pop_front())
    }

    fn victims(&self, w: usize, rng: &mut u64, buf: &mut Vec<usize>) {
        if self.threads <= 1 {
            buf.clear();
            return;
        }
        // One draw, two rotations: same-domain victims first (rotated
        // by the low bits), then the cross-domain fallback tail
        // (rotated by the high bits). Stable partition keeps each
        // group's rotation intact.
        let r = splitmix(rng);
        rotate_victims(w, self.threads, r, buf);
        buf.sort_by_key(|&v| self.domain[v] != self.domain[w]);
        let near = buf.iter().filter(|&&v| self.domain[v] == self.domain[w]).count();
        if near > 1 {
            buf[..near].rotate_left(((r >> 16) as usize) % near);
        }
    }

    #[inline]
    fn cross_domain(&self, w: usize, v: usize) -> bool {
        self.domain[w] != self.domain[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{KernelId, OperandDesc, TaskDesc};

    fn trace_of(tasks: Vec<TaskDesc>) -> TaskTrace {
        let mut tr = TaskTrace::new("sched-test");
        tr.add_kernel("k");
        for t in tasks {
            tr.push(t);
        }
        tr
    }

    /// runtime in cycles, footprint bytes (one output operand).
    fn task(runtime: u64, bytes: u32) -> TaskDesc {
        let ops = if bytes == 0 { vec![] } else { vec![OperandDesc::output(0x1000, bytes)] };
        TaskDesc::new(KernelId(0), runtime, ops)
    }

    #[test]
    fn kind_parses_and_round_trips() {
        for k in SchedKind::all() {
            assert_eq!(SchedKind::parse(k.name()), Some(k));
        }
        assert_eq!(SchedKind::parse("cilk"), None);
        for name in SCHED_MENU.split('|') {
            assert!(SchedKind::parse(name).is_some(), "menu lists unknown {name}");
        }
    }

    #[test]
    fn lifo_victims_match_the_baseline_scan() {
        // Same rng stream, same order as the pre-§13 inline code.
        let tr = trace_of(vec![]);
        let p = LifoPolicy::new(&tr, PayloadMode::Noop, 4, 2, 1);
        let mut rng_policy = 7u64;
        let mut rng_base = 7u64;
        let mut buf = Vec::new();
        for w in 0..4usize {
            for _ in 0..16 {
                p.victims(w, &mut rng_policy, &mut buf);
                let others: Vec<usize> = (0..4).filter(|&v| v != w).collect();
                let start = (splitmix(&mut rng_base) as usize) % others.len();
                let want: Vec<usize> =
                    (0..others.len()).map(|i| others[(start + i) % others.len()]).collect();
                assert_eq!(buf, want);
            }
        }
        assert_eq!(rng_policy, rng_base, "rng consumption diverged from the baseline");
        // Single worker: no victims and, critically, no rng draw.
        let p1 = LifoPolicy::new(&tr, PayloadMode::Noop, 1, 2, 1);
        let before = rng_policy;
        p1.victims(0, &mut rng_policy, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(rng_policy, before);
    }

    #[test]
    fn fifo_owner_takes_oldest_first() {
        let tr = trace_of(vec![]);
        let p = FifoPolicy::new(&tr, PayloadMode::Noop, 1, 2, 1);
        let d = ChaseLev::new();
        for t in 0..5u32 {
            assert!(p.dispatch(0, t, &d));
        }
        let drained: Vec<u32> = std::iter::from_fn(|| p.take_local(0, &d)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4], "FIFO must drain in push order");
        // And the baseline drains newest-first.
        let l = LifoPolicy::new(&tr, PayloadMode::Noop, 1, 2, 1);
        for t in 0..5u32 {
            l.dispatch(0, t, &d);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| l.take_local(0, &d)).collect();
        assert_eq!(drained, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn cost_estimates_follow_class_and_mode() {
        let small = task(3200, 64); // 1 µs spin, negligible bytes
        let big = task(3200, 128 << 10); // 128 KB ⇒ memory class under mixed
        let mixed = PayloadMode::Mixed { time_scale: 1.0 };
        assert!(task_cost(mixed, &big) > task_cost(mixed, &small) / 2);
        // Spin cost scales with runtime; memcpy cost with footprint.
        assert!(
            task_cost(PayloadMode::Spin { time_scale: 1.0 }, &task(6400, 0))
                > task_cost(PayloadMode::Spin { time_scale: 1.0 }, &task(3200, 0))
        );
        assert!(
            task_cost(PayloadMode::Memcpy, &task(0, 8192))
                > task_cost(PayloadMode::Memcpy, &task(0, 1024))
        );
        // Free payloads cost the uniform floor.
        assert_eq!(task_cost(PayloadMode::Noop, &big), COST_FLOOR);
    }

    #[test]
    fn cost_prepare_puts_the_longest_on_top() {
        let tasks = vec![task(3200, 0), task(9600, 0), task(6400, 0)];
        let tr = trace_of(tasks);
        let p = CostAwarePolicy::new(&tr, PayloadMode::Spin { time_scale: 1.0 }, 1, 2, 1);
        let mut ready = vec![0u32, 1, 2];
        p.prepare(&mut ready);
        assert_eq!(ready, vec![0, 2, 1], "ascending cost so LIFO pops the costliest");
        let d = ChaseLev::new();
        for &t in &ready {
            p.dispatch(0, t, &d);
        }
        assert_eq!(p.take_local(0, &d), Some(1), "longest-estimated task runs first");
    }

    #[test]
    fn cost_gauges_bias_the_victim_scan() {
        let tasks = vec![task(3200, 0), task(320_000, 0)];
        let tr = trace_of(tasks);
        let p = CostAwarePolicy::new(&tr, PayloadMode::Spin { time_scale: 1.0 }, 3, 2, 1);
        let d = ChaseLev::new();
        p.dispatch(2, 1, &d); // worker 2 holds the expensive task
        p.dispatch(1, 0, &d); // worker 1 the cheap one
        let mut rng = 1u64;
        let mut buf = Vec::new();
        p.victims(0, &mut rng, &mut buf);
        assert_eq!(buf, vec![2, 1], "most-loaded victim scanned first");
        // Debit on execution; a drifted-negative gauge clamps to zero
        // rather than poisoning the sort key.
        p.note_executed(2, 1);
        p.note_executed(2, 1);
        let mut buf2 = Vec::new();
        p.victims(0, &mut rng, &mut buf2);
        assert_eq!(buf2, vec![1, 2]);
    }

    #[test]
    fn locality_routes_cross_class_spawns_through_the_queue() {
        let tasks = vec![task(3200, 64), task(3200, 128 << 10)];
        let tr = trace_of(tasks);
        let mixed = PayloadMode::Mixed { time_scale: 1.0 };
        let p = LocalityPolicy::new(&tr, mixed, 4, 2, 1);
        // Workers 0,1 compute; 2,3 memory.
        assert_eq!(p.worker_class, vec![CLASS_COMPUTE, CLASS_COMPUTE, CLASS_MEMORY, CLASS_MEMORY]);
        let d = ChaseLev::new();
        // Compute worker spawns a compute task: stays local.
        assert!(p.dispatch(0, 0, &d));
        assert_eq!(d.len(), 1);
        // Compute worker spawns a memory task: routed.
        assert!(!p.dispatch(0, 1, &d));
        assert_eq!(d.len(), 1);
        // The memory pool drains it from the class queue...
        assert_eq!(p.take_routed(2), Some(1));
        // ...and a compute worker would have found it too (fallback).
        assert!(!p.dispatch(0, 1, &d));
        assert_eq!(p.take_routed(0), Some(1), "cross-class fallback must reach it");
        assert_eq!(p.take_routed(0), None);
    }

    #[test]
    fn locality_routing_disables_below_two_workers_or_classes() {
        let tasks = vec![task(3200, 128 << 10)];
        let tr = trace_of(tasks);
        let mixed = PayloadMode::Mixed { time_scale: 1.0 };
        for (threads, classes) in [(1usize, 2usize), (4, 1)] {
            let p = LocalityPolicy::new(&tr, mixed, threads, classes, 1);
            let d = ChaseLev::new();
            assert!(p.dispatch(0, 0, &d), "routing must be off (threads={threads})");
            assert_eq!(d.len(), 1);
            assert_eq!(p.take_routed(0), None);
        }
    }

    #[test]
    fn locality_victims_scan_own_domain_first() {
        let tr = trace_of(vec![]);
        // 4 workers, 2 domains: {0,1} and {2,3}.
        let p = LocalityPolicy::new(&tr, PayloadMode::Noop, 4, 2, 2);
        assert_eq!(p.domain, vec![0, 0, 1, 1]);
        let mut rng = 3u64;
        let mut buf = Vec::new();
        for _ in 0..32 {
            p.victims(0, &mut rng, &mut buf);
            assert_eq!(buf.len(), 3, "domains reorder the scan, never truncate it");
            assert_eq!(buf[0], 1, "the only same-domain victim must lead");
            let tail: Vec<usize> = buf[1..].to_vec();
            assert!(tail == vec![2, 3] || tail == vec![3, 2]);
            assert!(p.cross_domain(0, buf[1]));
            assert!(!p.cross_domain(0, buf[0]));
        }
    }

    #[test]
    fn locality_single_domain_covers_everyone() {
        let tr = trace_of(vec![]);
        let p = LocalityPolicy::new(&tr, PayloadMode::Noop, 4, 2, 1);
        let mut rng = 9u64;
        let mut buf = Vec::new();
        p.victims(1, &mut rng, &mut buf);
        let mut sorted = buf.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 3]);
        assert!(buf.iter().all(|&v| !p.cross_domain(1, v)));
    }
}

/// Model-checked interleaving tests for the policy seams (DESIGN.md
/// §13.5). Compiled only under `RUSTFLAGS="--cfg tss_model_check"`.
#[cfg(all(test, tss_model_check))]
mod model_tests {
    use super::*;
    use shuttle::thread;
    use std::sync::Arc;
    use tss_trace::{KernelId, TaskDesc};

    fn two_task_trace() -> TaskTrace {
        let mut tr = TaskTrace::new("model");
        tr.add_kernel("k");
        tr.push(TaskDesc::new(KernelId(0), 1, vec![]));
        tr.push(TaskDesc::new(KernelId(0), 1, vec![]));
        tr
    }

    /// Domain-ordered stealing cannot lose the last task: one task on
    /// worker 0's deque, the owner popping while a same-domain thief
    /// (worker 1) and a cross-domain fallback thief (worker 2, other
    /// domain) both run the policy's full victim scan. Exactly one of
    /// the three claims it under every interleaving — the domain
    /// *reordering* of the scan must never turn into a truncation that
    /// strands the task, and the Chase-Lev CAS arbitration must hold
    /// for the policy-ordered scan exactly as for the baseline scan.
    #[test]
    fn model_domain_fallback_cannot_lose_the_last_task() {
        let scenario = || {
            let tr = two_task_trace();
            // 4 workers, 2 domains: {0,1} vs {2,3}.
            let p = Arc::new(LocalityPolicy::new(&tr, PayloadMode::Noop, 4, 2, 2));
            let deques: Arc<Vec<ChaseLev>> = Arc::new((0..4).map(|_| ChaseLev::new()).collect());
            deques[0].push(7);
            let claims = Arc::new(crate::sync::atomic::AtomicU32::new(0));

            let mut handles = Vec::new();
            // The owner pops its own deque (the burst fast path).
            let (d0, c0) = (deques.clone(), claims.clone());
            handles.push(thread::spawn(move || {
                if d0[0].pop().is_some() {
                    c0.fetch_add(1, Ordering::Relaxed);
                }
            }));
            // Two thieves run the full policy scan from different
            // domains; worker 2 only reaches deque 0 via the
            // cross-domain fallback tail.
            for w in [1usize, 2] {
                let (p2, d2, c2) = (p.clone(), deques.clone(), claims.clone());
                handles.push(thread::spawn(move || {
                    let mut rng = w as u64;
                    let mut buf = Vec::new();
                    p2.victims(w, &mut rng, &mut buf);
                    for v in buf {
                        if d2[v].steal_batch_into(&d2[w], 4).is_some() {
                            c2.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let total = claims.load(Ordering::Relaxed);
            assert_eq!(total, 1, "the last task was claimed {total} times");
        };
        // Three threads over the full Chase-Lev protocol: too deep for
        // an exhaustive budget (the deque's own 3-party races use the
        // same seeded-PCT + random pairing, deque.rs §10.3).
        shuttle::check_pct(0x5C4E_D00D, 400, 3, scenario);
        shuttle::check_random(0x5C4E_D00D, 400, scenario);
    }

    /// Class-queue handoff preserves exactly-once: a producer routes a
    /// task through `dispatch` (cross-class ⇒ the overflow queue)
    /// while an own-class drainer and a cross-class fallback drainer
    /// race `take_routed`. The task must be taken exactly once, by
    /// someone — the mutex-protected queue must not duplicate it
    /// (PR 7's drain/commit discipline: a task leaves a staging
    /// structure exactly once, whoever wins) and the fallback must not
    /// let it vanish.
    #[test]
    fn model_class_queue_handoff_is_exactly_once() {
        let scenario = || {
            let mut tr = TaskTrace::new("model");
            tr.add_kernel("k");
            // One big-footprint task: memory class under Mixed.
            tr.push(TaskDesc::new(
                KernelId(0),
                1,
                vec![tss_trace::OperandDesc::output(0x40, (64 << 10) as u32)],
            ));
            let mixed = PayloadMode::Mixed { time_scale: 1.0 };
            let p = Arc::new(LocalityPolicy::new(&tr, mixed, 2, 2, 1));
            let takes = Arc::new(crate::sync::atomic::AtomicU32::new(0));

            // Producer: compute worker 0 completes a task and spawns
            // the memory-class successor — must route, not keep.
            let p1 = p.clone();
            let producer = thread::spawn(move || {
                let d = ChaseLev::new();
                assert!(!p1.dispatch(0, 0, &d), "cross-class spawn must route");
            });
            // Own-class drainer (memory worker 1) and cross-class
            // fallback drainer (compute worker 0) race the queue.
            let drainers: Vec<_> = [1usize, 0]
                .into_iter()
                .map(|w| {
                    let (p2, t2) = (p.clone(), takes.clone());
                    thread::spawn(move || {
                        if p2.take_routed(w).is_some() {
                            t2.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            producer.join().unwrap();
            for d in drainers {
                d.join().unwrap();
            }
            // The producer ran before this point (joined), so if both
            // drainers missed it the task is still in the queue —
            // drain it now to distinguish "lost" from "not yet".
            let leftover = u32::from(p.take_routed(1).is_some());
            let total = takes.load(Ordering::Relaxed) + leftover;
            assert_eq!(total, 1, "routed task must be taken exactly once, got {total}");
        };
        shuttle::check_pct(0xC1A5_50FF, 400, 3, scenario);
        shuttle::check_random(0xC1A5_50FF, 400, scenario);
    }
}
