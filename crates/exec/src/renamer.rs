//! The software renamer: an ORT/OVT-equivalent address-map frontend.
//!
//! The hardware pipeline's Object Renaming Tables map operand base
//! addresses to in-flight producers, and the Object Versioning Tables
//! give every pure `out` operand a fresh version so WaR/WaW orderings
//! vanish (paper, Figures 7 and 9). This module performs the same decode
//! in software, streaming over a [`TaskTrace`] in program order — the
//! in-order decode requirement of Section III.B — and emitting the
//! executor's runtime structures directly:
//!
//! - a CSR successor list (who to notify on completion), and
//! - a per-task *unready-operand* count (how many producers must finish
//!   before the task may issue), the O(1) readiness scheme the simulator
//!   backend already uses.
//!
//! Renaming is toggleable for ablation parity with the simulator's
//! `FrontendConfig::renaming`: with renaming **on**, only RaW and
//! inout-anti orderings are enforced (exactly the `DepGraph` oracle's
//! enforced edge set — a parity test in `tests/determinism.rs` pins
//! this); with renaming **off**, WaR and WaW orderings are enforced too,
//! mimicking a runtime without versioning.
//!
//! The decode loop is the subject of the `exec` harness's decode
//! microbench: one pass over the trace, one interned-hash probe per
//! tracked operand — the native analog of the paper's ~700 ns/task
//! software decoder measurement (Section II).
//!
//! The replay loop deliberately does **not** share code with
//! `DepGraph::from_trace`, although the two walk traces the same way:
//! the oracle check (every completion log validated against `DepGraph`)
//! is only evidence of correctness because the two decoders are
//! independent implementations. Folding them into one shared helper
//! would let a single decode bug pass the parity test and every
//! validated run. A semantic change to dependency rules must be made
//! in both — `renamer_matches_the_oracle_on_every_benchmark` (and the
//! unit parity test below) fails loudly if they drift.

use tss_trace::graph::AddrMap;
use tss_trace::{TaskId, TaskTrace};

/// What the renamer decoded a trace into: the executor's dependency
/// structures plus decode statistics.
///
/// Equality compares the full decoded structure (CSR, counters,
/// stats) — what the streaming-vs-one-shot parity tests assert on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskGraph {
    n: usize,
    succ_off: Vec<u32>,
    succ_dat: Vec<u32>,
    pred_count: Vec<u32>,
    stats: RenameStats,
}

/// Decode-time statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameStats {
    /// Distinct memory objects observed (ORT entries a hardware run
    /// would have interned).
    pub objects: usize,
    /// Dependency-tracked operands decoded.
    pub tracked_operands: usize,
    /// Enforced edges after deduplication.
    pub enforced_edges: usize,
    /// WaR/WaW orderings that renaming eliminated (0 when renaming is
    /// disabled: they are enforced instead).
    pub removed_by_renaming: usize,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Tasks to notify when `t` completes (sorted, deduplicated).
    pub fn succs(&self, t: TaskId) -> &[u32] {
        &self.succ_dat[self.succ_off[t] as usize..self.succ_off[t + 1] as usize]
    }

    /// How many producers must complete before `t` may issue.
    pub fn pred_count(&self, t: TaskId) -> u32 {
        self.pred_count[t]
    }

    /// Tasks with no producers, in program order (the initial ready set).
    pub fn roots(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n).filter(|&t| self.pred_count[t] == 0)
    }

    /// Decode statistics.
    pub fn stats(&self) -> &RenameStats {
        &self.stats
    }

    /// The quarantine cone (DESIGN.md §11): `cone[t]` is true iff `t`
    /// is a *strict* transitive successor of some task with `failed[t]`
    /// set (the failed tasks themselves are not in the cone — they are
    /// accounted as failed, not poisoned). Forward scan suffices: succ
    /// edges always point to later tasks, so by the time `t` is
    /// visited every producer's cone membership is final. This is the
    /// chaos suite's reachability oracle for the executor's poison
    /// propagation.
    pub fn poison_cone(&self, failed: &[bool]) -> Vec<bool> {
        assert_eq!(failed.len(), self.n, "failed mask length mismatch");
        let mut cone = vec![false; self.n];
        for t in 0..self.n {
            if failed[t] || cone[t] {
                for &s in self.succs(t) {
                    cone[s as usize] = true;
                }
            }
        }
        cone
    }
}

/// One in-flight version of a memory object, as the ORTs track it.
#[derive(Debug, Default, Clone)]
struct ObjectVersion {
    last_writer: Option<TaskId>,
    /// Readers of the current version; short in practice (Figure 10), so
    /// the first few live inline.
    readers_len: usize,
    readers: [TaskId; 8],
    overflow: Vec<TaskId>,
}

impl ObjectVersion {
    fn push_reader(&mut self, t: TaskId) {
        if self.readers_len < self.readers.len() {
            self.readers[self.readers_len] = t;
        } else {
            self.overflow.push(t);
        }
        self.readers_len += 1;
    }

    fn readers(&self) -> impl Iterator<Item = TaskId> + '_ {
        let inline = self.readers_len.min(self.readers.len());
        self.readers[..inline].iter().copied().chain(self.overflow.iter().copied())
    }

    fn clear_readers(&mut self) {
        self.readers_len = 0;
        self.overflow.clear();
    }
}

/// The software renamer.
#[derive(Debug, Clone)]
pub struct Renamer {
    renaming: bool,
}

impl Default for Renamer {
    fn default() -> Self {
        Renamer::new()
    }
}

impl Renamer {
    /// A renamer with operand renaming enabled (the paper's default).
    pub fn new() -> Self {
        Renamer { renaming: true }
    }

    /// Enables or disables renaming (ablation: without versioning, WaR
    /// and WaW orderings against `out` operands are enforced).
    pub fn renaming(mut self, on: bool) -> Self {
        self.renaming = on;
        self
    }

    /// Decodes `trace` into a [`TaskGraph`] by one in-order pass.
    pub fn decode(&self, trace: &TaskTrace) -> TaskGraph {
        let n = trace.len();
        let total_ops: usize = trace.iter().map(|t| t.operands.len()).sum();
        // (from, to) producer→consumer pairs; ~2 per operand upper bound
        // in the Table-I traces.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(2 * total_ops);
        let mut removed = 0usize;
        let mut tracked = 0usize;
        let mut object_index: AddrMap<u32> =
            AddrMap::with_capacity_and_hasher(n.max(16), Default::default());
        let mut versions: Vec<ObjectVersion> = Vec::with_capacity(n.max(16));

        for (tid, task) in trace.iter().enumerate() {
            for op in task.operands.iter().filter(|o| o.is_tracked()) {
                tracked += 1;
                let id = *object_index.entry(op.addr).or_insert_with(|| {
                    versions.push(ObjectVersion::default());
                    (versions.len() - 1) as u32
                });
                let st = &mut versions[id as usize];
                if op.dir.reads() {
                    if let Some(w) = st.last_writer {
                        if w != tid {
                            pairs.push((w as u32, tid as u32)); // RaW
                        }
                    }
                }
                if op.dir.writes() {
                    let inout = op.dir.reads();
                    for r in st.readers() {
                        if r != tid {
                            if inout || !self.renaming {
                                pairs.push((r as u32, tid as u32)); // anti / WaR
                            } else {
                                removed += 1; // WaR: a fresh OVT version
                            }
                        }
                    }
                    if let Some(w) = st.last_writer {
                        if w != tid && !inout {
                            if self.renaming {
                                removed += 1; // WaW: renamed away
                            } else {
                                pairs.push((w as u32, tid as u32));
                            }
                        }
                    }
                    st.last_writer = Some(tid);
                    st.clear_readers();
                }
                if op.dir.reads() {
                    st.push_reader(tid);
                }
            }
        }

        let (succ_off, succ_dat) = build_csr(n, &mut pairs);
        let mut pred_count = vec![0u32; n];
        for &s in &succ_dat {
            pred_count[s as usize] += 1;
        }
        let stats = RenameStats {
            objects: versions.len(),
            tracked_operands: tracked,
            enforced_edges: succ_dat.len(),
            removed_by_renaming: removed,
        };
        TaskGraph { n, succ_off, succ_dat, pred_count, stats }
    }
}

// ---------------------------------------------------------------------
// Streaming sharded renamer
// ---------------------------------------------------------------------

/// Which address shard owns `addr` when interning is split `shards`
/// ways. High multiplier bits so the partition is independent of the
/// low-bit distribution `AddrMap`'s probe hash feeds on.
#[inline]
pub(crate) fn shard_of(addr: u64, shards: u32) -> u32 {
    if shards <= 1 {
        0
    } else {
        ((addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % shards as u64) as u32
    }
}

/// One shard's sequential rename state: the ORT/OVT slice owning every
/// address that hashes to this shard (the paper's *distributed ORT*
/// analogy — each hardware ORT owns an address partition and renames it
/// independently; DESIGN.md §8).
///
/// A shard scans tasks in program order but touches only its own
/// addresses, so `shards` states can run on `shards` threads with no
/// shared rename state at all; dependency pairs meet again only at the
/// window merge.
#[derive(Debug)]
pub(crate) struct ShardState {
    renaming: bool,
    shard: u32,
    shards: u32,
    map: AddrMap<u32>,
    versions: Vec<ObjectVersion>,
    stats: RenameStats,
}

impl ShardState {
    pub(crate) fn new(renaming: bool, shard: u32, shards: u32) -> Self {
        ShardState {
            renaming,
            shard,
            shards,
            map: AddrMap::with_capacity_and_hasher(64, Default::default()),
            versions: Vec::with_capacity(64),
            stats: RenameStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> &RenameStats {
        &self.stats
    }

    /// Scans tasks `[lo, hi)` of `trace`, appending `(consumer,
    /// producer)` pairs for operands whose address this shard owns.
    /// Pairs are emitted with `consumer` ascending (scan order); the
    /// per-consumer producer sets may hold duplicates (deduplicated at
    /// the window merge, exactly as the one-shot decoder deduplicates
    /// globally).
    ///
    /// Must be called with contiguous, in-order ranges: the rename
    /// state is sequential per shard.
    pub(crate) fn scan(
        &mut self,
        trace: &TaskTrace,
        lo: usize,
        hi: usize,
        pairs: &mut Vec<(u32, u32)>,
    ) {
        for tid in lo..hi {
            for op in trace.task(tid).operands.iter().filter(|o| o.is_tracked()) {
                if shard_of(op.addr, self.shards) != self.shard {
                    continue;
                }
                self.stats.tracked_operands += 1;
                let id = *self.map.entry(op.addr).or_insert_with(|| {
                    self.versions.push(ObjectVersion::default());
                    (self.versions.len() - 1) as u32
                });
                let st = &mut self.versions[id as usize];
                if op.dir.reads() {
                    if let Some(w) = st.last_writer {
                        if w != tid {
                            pairs.push((tid as u32, w as u32)); // RaW
                        }
                    }
                }
                if op.dir.writes() {
                    let inout = op.dir.reads();
                    for r in st.readers() {
                        if r != tid {
                            if inout || !self.renaming {
                                pairs.push((tid as u32, r as u32)); // anti / WaR
                            } else {
                                self.stats.removed_by_renaming += 1;
                            }
                        }
                    }
                    if let Some(w) = st.last_writer {
                        if w != tid && !inout {
                            if self.renaming {
                                self.stats.removed_by_renaming += 1; // WaW renamed away
                            } else {
                                pairs.push((tid as u32, w as u32));
                            }
                        }
                    }
                    st.last_writer = Some(tid);
                    st.clear_readers();
                }
                if op.dir.reads() {
                    st.push_reader(tid);
                }
            }
        }
        self.stats.objects = self.versions.len();
    }
}

/// Merges one window's shard pair buffers: for every task in `[lo,
/// hi)`, in program order, gathers its producers from all shards,
/// sorts and deduplicates them, and hands `(task, sorted unique
/// producers)` to `commit`. `cursors[i]` tracks consumption of
/// `bufs[i]` across windows; `scratch` is reused storage.
///
/// Per-task dedup here equals the one-shot decoder's global pair dedup
/// (a `(p, s)` pair is unique iff it is unique within `s`'s set), which
/// is what makes streaming output bit-identical to `Renamer::decode` —
/// pinned by `tests/streaming.rs`.
pub(crate) fn merge_window(
    lo: usize,
    hi: usize,
    bufs: &[Vec<(u32, u32)>],
    cursors: &mut [usize],
    scratch: &mut Vec<u32>,
    mut commit: impl FnMut(u32, &[u32]),
) {
    for s in lo..hi {
        let s = s as u32;
        scratch.clear();
        for (buf, cur) in bufs.iter().zip(cursors.iter_mut()) {
            while *cur < buf.len() && buf[*cur].0 == s {
                scratch.push(buf[*cur].1);
                *cur += 1;
            }
        }
        scratch.sort_unstable();
        scratch.dedup();
        commit(s, scratch);
    }
}

/// The streaming face of the renamer: decode in **windows** (so a
/// consumer can start executing window 0 while window 1 is still being
/// decoded) with address interning **sharded** `shards` ways (so
/// multiple decode threads rename disjoint address partitions).
///
/// This type materializes graphs for tests and offline use; the live
/// overlapped pipeline (decode threads feeding executing workers) is
/// assembled in [`crate::executor`] from the same [`ShardState`] /
/// [`merge_window`] building blocks.
#[derive(Debug, Clone)]
pub struct StreamingRenamer {
    renaming: bool,
    window: usize,
    shards: usize,
}

impl Default for StreamingRenamer {
    fn default() -> Self {
        StreamingRenamer::new()
    }
}

impl StreamingRenamer {
    /// Defaults: renaming on, 1024-task windows, one shard.
    pub fn new() -> Self {
        StreamingRenamer { renaming: true, window: 1024, shards: 1 }
    }

    /// Enables or disables renaming (see [`Renamer::renaming`]).
    pub fn renaming(mut self, on: bool) -> Self {
        self.renaming = on;
        self
    }

    /// Sets the decode window size (tasks committed per batch; ≥ 1).
    pub fn window(mut self, tasks: usize) -> Self {
        self.window = tasks.max(1);
        self
    }

    /// Sets the interning shard count (≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Decodes `trace` window by window through the sharded path and
    /// materializes the same [`TaskGraph`] the one-shot
    /// [`Renamer::decode`] produces (bit-identical CSR, counters, and
    /// stats — the parity proptest in `tests/streaming.rs` pins this).
    pub fn decode_graph(&self, trace: &TaskTrace) -> TaskGraph {
        let n = trace.len();
        let mut shards: Vec<ShardState> = (0..self.shards)
            .map(|i| ShardState::new(self.renaming, i as u32, self.shards as u32))
            .collect();
        let mut bufs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.shards];
        let mut cursors = vec![0usize; self.shards];
        let mut scratch = Vec::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut pred_count = vec![0u32; n];
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + self.window).min(n);
            for (sh, buf) in shards.iter_mut().zip(bufs.iter_mut()) {
                buf.clear();
                sh.scan(trace, lo, hi, buf);
            }
            cursors.iter_mut().for_each(|c| *c = 0);
            merge_window(lo, hi, &bufs, &mut cursors, &mut scratch, |s, preds| {
                pred_count[s as usize] = preds.len() as u32;
                for &p in preds {
                    pairs.push((p, s));
                }
            });
            lo = hi;
        }
        pairs.sort_unstable();
        let (succ_off, succ_dat) = build_csr_sorted(n, &pairs);
        let mut stats = RenameStats { enforced_edges: succ_dat.len(), ..RenameStats::default() };
        for sh in &shards {
            stats.objects += sh.stats.objects;
            stats.tracked_operands += sh.stats.tracked_operands;
            stats.removed_by_renaming += sh.stats.removed_by_renaming;
        }
        TaskGraph { n, succ_off, succ_dat, pred_count, stats }
    }
}

/// Sorts `pairs` and builds a deduplicated CSR successor adjacency.
fn build_csr(n: usize, pairs: &mut Vec<(u32, u32)>) -> (Vec<u32>, Vec<u32>) {
    pairs.sort_unstable();
    pairs.dedup();
    build_csr_sorted(n, pairs)
}

/// CSR adjacency from an already-sorted, already-unique pair list.
fn build_csr_sorted(n: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n + 1];
    for &(from, _) in pairs.iter() {
        off[from as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let dat = pairs.iter().map(|&(_, to)| to).collect();
    (off, dat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{DepGraph, OperandDesc, TaskTrace};

    fn chain() -> TaskTrace {
        let mut tr = TaskTrace::new("chain");
        let k = tr.add_kernel("k");
        tr.push_task(k, 10, vec![OperandDesc::output(0x100, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0x100, 64), OperandDesc::output(0x200, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0x200, 64)]);
        tr
    }

    #[test]
    fn decodes_a_producer_consumer_chain() {
        let g = Renamer::new().decode(&chain());
        assert_eq!(g.len(), 3);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.succs(1), &[2]);
        assert_eq!(g.pred_count(0), 0);
        assert_eq!(g.pred_count(1), 1);
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.stats().enforced_edges, 2);
        assert_eq!(g.stats().objects, 2);
    }

    #[test]
    fn renaming_matches_the_oracle_enforced_set() {
        let tr = chain();
        let oracle = DepGraph::from_trace(&tr);
        let g = Renamer::new().decode(&tr);
        for t in 0..tr.len() {
            let expect: Vec<u32> = oracle.succs(t).iter().map(|&s| s as u32).collect();
            assert_eq!(g.succs(t), &expect[..]);
            assert_eq!(g.pred_count(t) as usize, oracle.preds(t).len());
        }
    }

    #[test]
    fn disabling_renaming_enforces_waw_and_war() {
        let mut tr = TaskTrace::new("ww");
        let k = tr.add_kernel("k");
        tr.push_task(k, 10, vec![OperandDesc::output(0x100, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0x100, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::output(0x100, 64)]); // WaW vs 0, WaR vs 1
        let with = Renamer::new().decode(&tr);
        assert_eq!(with.pred_count(2), 0);
        assert_eq!(with.stats().removed_by_renaming, 2);
        let without = Renamer::new().renaming(false).decode(&tr);
        assert_eq!(without.pred_count(2), 2);
        assert_eq!(without.stats().removed_by_renaming, 0);
    }

    #[test]
    fn poison_cone_is_the_strict_successor_closure() {
        // diamond 0 → {1, 2} → 3 plus an independent task 4
        let mut tr = TaskTrace::new("diamond");
        let k = tr.add_kernel("k");
        tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xB, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xC, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xB, 64), OperandDesc::input(0xC, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::output(0xD, 64)]);
        let g = Renamer::new().decode(&tr);
        // Root fails: everything downstream is in the cone, the failed
        // task and the independent task are not.
        let mut failed = vec![false; 5];
        failed[0] = true;
        assert_eq!(g.poison_cone(&failed), vec![false, true, true, true, false]);
        // A mid-graph failure only reaches the join.
        let mut failed = vec![false; 5];
        failed[1] = true;
        assert_eq!(g.poison_cone(&failed), vec![false, false, false, true, false]);
        // A sink failure poisons nothing.
        let mut failed = vec![false; 5];
        failed[3] = true;
        assert_eq!(g.poison_cone(&failed), vec![false; 5]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        // Two RaW edges over different objects between the same pair.
        let mut tr = TaskTrace::new("dup");
        let k = tr.add_kernel("k");
        tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64), OperandDesc::output(0xB, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::input(0xB, 64)]);
        let g = Renamer::new().decode(&tr);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.pred_count(1), 1);
    }

    #[test]
    fn empty_trace_decodes_to_an_empty_graph() {
        let g = Renamer::new().decode(&TaskTrace::new("empty"));
        assert!(g.is_empty());
        assert_eq!(g.roots().count(), 0);
        let s = StreamingRenamer::new().decode_graph(&TaskTrace::new("empty"));
        assert!(s.is_empty());
    }

    #[test]
    fn streaming_matches_one_shot_on_unit_traces() {
        let mut waw = TaskTrace::new("ww");
        let k = waw.add_kernel("k");
        waw.push_task(k, 10, vec![OperandDesc::output(0x100, 64)]);
        waw.push_task(k, 10, vec![OperandDesc::input(0x100, 64)]);
        waw.push_task(k, 10, vec![OperandDesc::output(0x100, 64)]);
        for trace in [chain(), waw] {
            for renaming in [true, false] {
                let oneshot = Renamer::new().renaming(renaming).decode(&trace);
                for (window, shards) in [(1, 1), (1, 3), (2, 2), (64, 4)] {
                    let streamed = StreamingRenamer::new()
                        .renaming(renaming)
                        .window(window)
                        .shards(shards)
                        .decode_graph(&trace);
                    assert_eq!(
                        streamed, oneshot,
                        "window {window} x shards {shards}, renaming {renaming}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_partition_is_total_and_stable() {
        for shards in [1u32, 2, 3, 8] {
            for addr in [0u64, 0xA, 0x100, 0xDEAD_BEEF, u64::MAX] {
                let s = shard_of(addr, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(addr, shards), "stable");
            }
        }
    }
}
