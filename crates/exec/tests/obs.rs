//! Observability integration (ISSUE 8): the sink selection is a
//! compile-time feature, so this suite runs in both configurations —
//! `cargo test -p tss-exec` exercises the NoopSink (obs must be absent
//! and cost nothing), `--features obs` exercises the RingSink (tracks,
//! histograms, and the determinism argument of DESIGN.md §12.5).

use tss_exec::{obs_enabled, ExecConfig, Executor, TaskGraphBuilder};
use tss_trace::TaskTrace;

/// A mixed graph big enough that 1-in-16 sampling still lands: `n`
/// producer/consumer pairs over `width` rotating buffers, so there is
/// real dependence structure and real parallelism.
fn graph(n: usize, width: u64) -> TaskTrace {
    let mut b = TaskGraphBuilder::new("obs-mix");
    let produce = b.kernel("produce");
    let consume = b.kernel("consume");
    for i in 0..n as u64 {
        let buf = 0x1000 + (i % width) * 0x100;
        b.task(produce).runtime_us(0.5).output(buf, 128).spawn();
        b.task(consume).runtime_us(0.5).input(buf, 128).spawn();
    }
    b.build()
}

fn exec(threads: usize) -> Executor {
    Executor::new(ExecConfig { threads, ..Default::default() })
}

#[test]
fn one_worker_replay_stays_deterministic_under_observation() {
    // DESIGN.md §12.5: sampling is pure in the task id and recording
    // never blocks, so turning obs on cannot change scheduling. With
    // one worker the completion order is fully determined — two runs
    // must agree exactly, and both must pass the dependence oracle.
    let trace = graph(512, 8);
    let a = exec(1).run_oneshot(&trace).expect("first replay failed");
    let b = exec(1).run_oneshot(&trace).expect("second replay failed");
    assert!(a.validated && b.validated, "oracle rejected an observed replay");
    assert_eq!(a.order, b.order, "1-worker replay order must be deterministic");
    assert_eq!(a.obs.is_some(), obs_enabled());
}

#[test]
fn obs_report_presence_matches_the_build() {
    let trace = graph(256, 4);
    let report = exec(2).run_oneshot(&trace).expect("replay failed");
    match report.obs {
        Some(_) => assert!(obs_enabled(), "NoopSink build must not produce a report"),
        None => assert!(!obs_enabled(), "RingSink build must produce a report"),
    }
}

#[test]
fn ring_report_covers_every_worker_and_respects_sampling() {
    let threads = 3;
    let trace = graph(2048, 16);
    let tasks = trace.len() as u64;
    let report = exec(threads).run_oneshot(&trace).expect("replay failed");
    assert!(report.validated);
    let Some(obs) = report.obs else {
        assert!(!obs_enabled());
        return;
    };

    // One track per worker, each with at least the whole-worker span.
    assert_eq!(obs.tracks.len(), threads);
    for (i, track) in obs.tracks.iter().enumerate() {
        assert_eq!(track.name, format!("worker-{i}"));
        assert!(!track.events.is_empty(), "track {i} recorded nothing");
        assert_eq!(track.dropped, 0, "tiny run must not overflow a ring");
    }

    // Histograms hold sampled tasks only: nonzero (4096 tasks at
    // 1-in-16 sampling), but never more than the task count.
    assert!(!obs.exec_latency.is_empty(), "no task latencies sampled");
    assert!(obs.exec_latency.count() <= tasks);
    assert!(obs.queue_wait.count() <= obs.exec_latency.count());
    assert!(obs.exec_latency.p50() <= obs.exec_latency.p99());
    assert!(obs.exec_latency.p99() <= obs.exec_latency.p999());
    assert_eq!(obs.sample_every, tss_exec::obs::SAMPLE_EVERY);

    // And the Chrome export of a real run is structurally sound.
    let json = tss_exec::obs::chrome_trace(&[("obs-mix".into(), &obs)]);
    assert!(json.contains("\"thread_name\"") && json.contains("worker-0"));
    assert!(json.contains("\"ph\":\"X\""), "no slices in a real run");
}

#[test]
fn streaming_runs_carry_decode_shard_tracks() {
    let trace = graph(2048, 16);
    let report = Executor::new(ExecConfig { threads: 2, decode_shards: 2, ..Default::default() })
        .run(&trace)
        .expect("streaming run failed");
    assert!(report.validated);
    let Some(obs) = report.obs else {
        assert!(!obs_enabled());
        return;
    };
    let names: Vec<&str> = obs.tracks.iter().map(|t| t.name.as_str()).collect();
    assert!(names.contains(&"worker-0") && names.contains(&"worker-1"), "{names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("decode-")),
        "streaming run lost its decode tracks: {names:?}"
    );
}
