//! The streaming renamer's contract (ISSUE 4): decode in windows, with
//! address interning sharded across decode threads, must be
//! *indistinguishable* from PR 3's one-shot decode —
//!
//! - **Structure parity.** For every benchmark, window size, shard
//!   count, and renaming setting, `StreamingRenamer::decode_graph`
//!   must produce byte-identical successor CSR, unready counters, and
//!   stats to `Renamer::decode` (which itself is test-pinned to the
//!   `DepGraph` oracle).
//! - **Replay parity.** The live pipelined executor (decode threads
//!   racing workers, pending-release lists, sentinel counters) must
//!   emit oracle-valid completion logs at every thread count, and a
//!   1-worker streaming replay stays bit-deterministic: in-order
//!   window commits make the injector sequence a pure function of the
//!   trace.

use proptest::prelude::*;
use tss_exec::{ExecConfig, Executor, Renamer, StreamingRenamer};
use tss_trace::DepGraph;
use tss_workloads::{Benchmark, Scale};

#[test]
fn streaming_graph_matches_oneshot_on_every_benchmark() {
    for b in Benchmark::all() {
        let trace = b.trace(Scale::Small, 5);
        for renaming in [true, false] {
            let oneshot = Renamer::new().renaming(renaming).decode(&trace);
            for (window, shards) in [(1usize, 2usize), (97, 1), (256, 4), (1 << 20, 3)] {
                let streamed = StreamingRenamer::new()
                    .renaming(renaming)
                    .window(window)
                    .shards(shards)
                    .decode_graph(&trace);
                assert_eq!(
                    streamed, oneshot,
                    "{b}: window {window} x shards {shards}, renaming {renaming}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Window sizes and shard counts drawn freely: the successor CSR
    /// and unready counters never depend on either.
    #[test]
    fn streaming_graph_parity_over_windows_and_shards(
        bench_sel in 0u8..9,
        window in 1usize..600,
        shards in 1usize..6,
        renaming in 0u8..2,
        seed in 1u32..10_000,
    ) {
        let bench = Benchmark::all()[bench_sel as usize];
        let trace = bench.trace(Scale::Small, seed as u64);
        let oneshot = Renamer::new().renaming(renaming == 1).decode(&trace);
        let streamed = StreamingRenamer::new()
            .renaming(renaming == 1)
            .window(window)
            .shards(shards)
            .decode_graph(&trace);
        prop_assert!(
            streamed == oneshot,
            "{} seed {}: window {} x shards {} diverged from one-shot",
            bench, seed, window, shards
        );
    }

    /// The live pipelined executor: any benchmark, thread count, shard
    /// count, and window size must linearize the oracle.
    #[test]
    fn streamed_replay_always_linearizes_the_oracle(
        bench_sel in 0u8..9,
        thread_sel in 0u8..3,
        shards in 1usize..4,
        window in 1usize..300,
        seed in 1u32..50_000,
    ) {
        let threads = [2usize, 4, 8][thread_sel as usize];
        let bench = Benchmark::all()[bench_sel as usize];
        let trace = bench.trace(Scale::Small, seed as u64);
        let cfg = ExecConfig {
            threads,
            seed: seed as u64,
            window,
            decode_shards: shards,
            validate: false, // validated explicitly below for a prop_assert
            ..ExecConfig::default()
        };
        let report = Executor::new(cfg).run(&trace).expect("replay failed");
        let oracle = DepGraph::from_trace(&trace);
        prop_assert!(
            oracle.validate_order(&report.order).is_ok(),
            "{} at {} threads / {} shards / window {}, seed {}: violates the oracle",
            bench, threads, shards, window, seed
        );
        prop_assert_eq!(report.order.len(), trace.len());
    }
}

/// The determinism contract, precisely (DESIGN.md §8): a *two-phase*
/// 1-worker replay is bit-deterministic (`determinism.rs` pins that).
/// A *streamed* 1-worker replay is **oracle**-deterministic only:
/// whether a task enters through the injector (ready when its window
/// committed) or through a producer's pending-release list (decoded
/// after the producer finished) is exactly the decode-vs-execution
/// race the pipeline exists to exploit, so the completion order may
/// legally vary — but every such order linearizes the dependency
/// oracle, the *decoded structure* never varies, and no steals can
/// occur.
#[test]
fn one_worker_streaming_is_oracle_deterministic() {
    for b in [Benchmark::Cholesky, Benchmark::H264, Benchmark::Specfem] {
        let trace = b.trace(Scale::Small, 7);
        let oracle = DepGraph::from_trace(&trace);
        for (seed, shards) in [(1u64, 1usize), (7, 2), (99, 3)] {
            let report = Executor::new(ExecConfig {
                threads: 1,
                seed,
                decode_shards: shards,
                window: 128,
                validate: false,
                ..ExecConfig::default()
            })
            .run(&trace)
            .expect("replay failed");
            assert!(
                oracle.validate_order(&report.order).is_ok(),
                "{b}: 1-worker streamed order violates the oracle (seed {seed}, {shards} shards)"
            );
            assert_eq!(report.total_steals(), 0, "{b}: no one to steal from");
            assert_eq!(&report.rename, Renamer::new().decode(&trace).stats(), "{b}");
        }
    }
}

#[test]
fn streaming_overlap_is_reported() {
    // A real benchmark with several windows: decode must be observed
    // streaming inside the exec span, and the rename stats must match
    // the one-shot decoder's.
    let trace = Benchmark::Cholesky.trace(Scale::Small, 3);
    let oneshot = Renamer::new().decode(&trace);
    let cfg = ExecConfig { threads: 2, window: 64, decode_shards: 2, ..ExecConfig::default() };
    let report = Executor::new(cfg).run(&trace).expect("replay failed");
    assert!(report.streaming);
    assert_eq!(report.decode_shards, 2);
    assert!((0.0..=100.0).contains(&report.decode_overlap_pct));
    assert!(report.decode_wall.as_nanos() > 0, "decode span was recorded");
    assert_eq!(&report.rename, oneshot.stats(), "streamed stats match one-shot");
}
