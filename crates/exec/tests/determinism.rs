//! Determinism boundaries of the native executor (ISSUE 3, sharpened
//! by ISSUE 4's pipelined core):
//!
//! - **Single-thread two-phase replay is bit-deterministic.** One
//!   worker over a fully decoded graph: no stealing, no ticket race,
//!   no decode race — completion order is a pure function of the queue
//!   discipline (own-deque LIFO over injector FIFO, with batch steals
//!   banking roots oldest-first), so two runs must produce
//!   byte-identical completion logs. Streamed runs trade this for
//!   decode overlap — their 1-worker contract (oracle determinism) is
//!   pinned in `streaming.rs`.
//! - **Multi-thread replay is oracle-deterministic, not bit-
//!   deterministic.** The OS scheduler interleaves workers freely; the
//!   contract is that *every* interleaving linearizes the dependency
//!   order. A proptest over seeds × thread counts (2, 4, 8) pins it.
//! - **The renamer is the oracle's twin.** With renaming on, its
//!   pred/succ structure must equal `DepGraph`'s enforced edge set on
//!   every benchmark.

use proptest::prelude::*;
use tss_exec::{ExecConfig, Executor, PayloadMode, Renamer};
use tss_trace::DepGraph;
use tss_workloads::{Benchmark, Scale};

#[test]
fn single_thread_replay_is_bit_deterministic() {
    for b in [Benchmark::Cholesky, Benchmark::H264, Benchmark::Stap] {
        let trace = b.trace(Scale::Small, 7);
        let run = |seed| {
            Executor::new(ExecConfig { threads: 1, seed, ..ExecConfig::default() })
                .run_oneshot(&trace)
                .expect("replay failed")
        };
        let first = run(1);
        let second = run(1);
        assert_eq!(first.order, second.order, "{b}: single-thread order drifted");
        // Even the steal seed must be irrelevant with one worker.
        let other_seed = run(99);
        assert_eq!(first.order, other_seed.order, "{b}: seed leaked into 1-thread order");
        assert_eq!(first.total_steals(), 0);
    }
}

#[test]
fn renamer_matches_the_oracle_on_every_benchmark() {
    for b in Benchmark::all() {
        let trace = b.trace(Scale::Small, 3);
        let oracle = DepGraph::from_trace(&trace);
        let graph = Renamer::new().decode(&trace);
        assert_eq!(graph.len(), oracle.len());
        assert_eq!(graph.stats().enforced_edges, oracle.enforced_edge_count(), "{b}");
        for t in 0..trace.len() {
            let expect: Vec<u32> = oracle.succs(t).iter().map(|&s| s as u32).collect();
            assert_eq!(graph.succs(t), &expect[..], "{b}: task {t} successors diverge");
            assert_eq!(
                graph.pred_count(t) as usize,
                oracle.preds(t).len(),
                "{b}: task {t} pred count diverges"
            );
        }
    }
}

#[test]
fn every_benchmark_replays_validated_at_two_four_and_eight_threads() {
    for b in Benchmark::all() {
        for threads in [2usize, 4, 8] {
            let trace = b.trace(Scale::Small, 11);
            let report = Executor::new(ExecConfig { threads, ..ExecConfig::default() })
                .run(&trace)
                .expect("replay failed");
            assert!(report.validated, "{b} at {threads} threads");
            assert_eq!(report.tasks, trace.len(), "{b} at {threads} threads");
            let executed: u64 = report.workers.iter().map(|w| w.executed).sum();
            assert_eq!(executed as usize, trace.len(), "{b}: workers lost tasks at {threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multithread_replay_always_linearizes_the_oracle(
        seed in 1u32..50_000,
        thread_sel in 0u8..3,
        bench_sel in 0u8..9,
    ) {
        let threads = [2usize, 4, 8][thread_sel as usize];
        let bench = Benchmark::all()[bench_sel as usize];
        let trace = bench.trace(Scale::Small, seed as u64);
        let cfg = ExecConfig {
            threads,
            payload: PayloadMode::Noop,
            seed: seed as u64,
            validate: false, // validated explicitly below for a prop_assert
            ..ExecConfig::default()
        };
        let report = Executor::new(cfg).run(&trace).expect("replay failed");
        let oracle = DepGraph::from_trace(&trace);
        prop_assert!(
            oracle.validate_order(&report.order).is_ok(),
            "{} at {} threads, seed {}: completion log violates the oracle",
            bench, threads, seed
        );
        prop_assert_eq!(report.order.len(), trace.len());
    }
}
