//! Chaos-injection contract of the failure domain (DESIGN.md §11):
//! because every injected fault is a pure function of `(fault seed,
//! task, attempt)`, the *failure sets* of a run are predictable from
//! the trace alone — this suite recomputes them independently (via
//! `fault_decision` + the `DepGraph` reachability oracle) and pins the
//! executor to them across seeds × thread counts × rates × policies:
//!
//! - **Quarantine poisons exactly the successor cone.** Not one task
//!   more (over-poisoning silently discards healthy work), not one
//!   less (under-poisoning runs consumers of garbage).
//! - **Non-poisoned completions still linearize the oracle.** A chaos
//!   run is not an excuse for a misordered survivor.
//! - **Accounting reconciles.** `completed + failed + poisoned =
//!   tasks`, with the two sides counted by independent mechanisms
//!   (worker counters vs the final status scan).
//! - **One worker ⇒ bit-identical outcomes.** Same seed, same trace,
//!   same policy: two single-worker runs agree byte for byte on the
//!   completion log *and* the failure sets.

use proptest::prelude::*;
use tss_exec::fault::FaultPlan;
use tss_exec::{ExecConfig, ExecError, Executor, FailurePolicy, PayloadMode, Renamer};
use tss_trace::{DepGraph, TaskTrace};
use tss_workloads::{Benchmark, Scale};

/// Recomputes the failure sets the executor must produce: walk tasks in
/// id order (dependency edges always point forward), roll each
/// non-poisoned task's attempts with the same pure hash the executor
/// uses, and propagate the poison cone through the *oracle's* edges
/// (`DepGraph`), not the executor's renamer — an independent witness.
/// Returns `(failed, poisoned, retried_ok)` with the id vectors sorted.
fn expected_failure_sets(
    trace: &TaskTrace,
    oracle: &DepGraph,
    rate_ppm: u32,
    seed: u64,
    policy: FailurePolicy,
) -> (Vec<u32>, Vec<u32>, usize) {
    let plan = FaultPlan { rate_ppm, seed, kill_worker: None };
    let max_attempts = policy.max_attempts();
    let n = trace.len();
    let mut cone = vec![false; n];
    let mut failed = Vec::new();
    let mut retried_ok = 0usize;
    for t in 0..n {
        if cone[t] {
            for &s in oracle.succs(t) {
                cone[s] = true;
            }
            continue;
        }
        let t32 = t as u32;
        // No deadline armed in this suite: injected delays are
        // deterministically downgraded to panics (FaultPlan::effective).
        let fails_all = (1..=max_attempts).all(|a| plan.effective(t32, a, false).is_some());
        if fails_all {
            failed.push(t32);
            for &s in oracle.succs(t) {
                cone[s] = true;
            }
        } else if plan.effective(t32, 1, false).is_some() {
            retried_ok += 1;
        }
    }
    let poisoned = (0..n).filter(|&t| cone[t]).map(|t| t as u32).collect();
    (failed, poisoned, retried_ok)
}

fn chaos_cfg(threads: usize, rate_ppm: u32, fault_seed: u64, policy: FailurePolicy) -> ExecConfig {
    ExecConfig {
        threads,
        payload: PayloadMode::Faulty { rate_ppm, seed: fault_seed },
        policy,
        // Validated explicitly below so violations become prop_asserts
        // with context instead of an executor error.
        validate: false,
        ..ExecConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full matrix: seeds × {2,4,8} threads × rates × all three
    /// policies × two-phase/streamed, against the independent oracle.
    #[test]
    fn chaos_runs_match_the_recomputed_failure_sets(
        fault_seed_raw in 0u32..10_000,
        thread_sel in 0u8..3,
        rate_sel in 0u8..3,
        policy_sel in 0u8..3,
        bench_sel in 0u8..9,
        streamed_sel in 0u8..2,
    ) {
        let fault_seed = fault_seed_raw as u64;
        let streamed = streamed_sel == 1;
        let threads = [2usize, 4, 8][thread_sel as usize];
        let rate_ppm = [50_000u32, 200_000, 500_000][rate_sel as usize];
        let policy = [
            FailurePolicy::FailFast,
            FailurePolicy::Retry { max_attempts: 3, backoff: std::time::Duration::ZERO },
            FailurePolicy::Quarantine,
        ][policy_sel as usize];
        let bench = Benchmark::all()[bench_sel as usize];
        let trace = bench.trace(Scale::Small, 11);
        let oracle = DepGraph::from_trace(&trace);
        let (exp_failed, exp_poisoned, exp_retried) =
            expected_failure_sets(&trace, &oracle, rate_ppm, fault_seed, policy);

        let exec = Executor::new(chaos_cfg(threads, rate_ppm, fault_seed, policy));
        let result = if streamed { exec.run(&trace) } else { exec.run_oneshot(&trace) };

        if policy == FailurePolicy::FailFast {
            // Fail-fast aborts at the first failure: with any expected
            // failure the run must error on a task whose first roll the
            // hash says fails; with none it must be a clean report.
            match result {
                Ok(report) => {
                    prop_assert!(exp_failed.is_empty(),
                        "{bench}: expected failures {exp_failed:?} but the run succeeded");
                    prop_assert!(!report.fault.any());
                    prop_assert!(report.accounting_reconciles());
                    prop_assert!(oracle.validate_order(&report.order).is_ok());
                }
                Err(ExecError::TaskFailed(ft)) => {
                    prop_assert!(
                        FaultPlan { rate_ppm, seed: fault_seed, kill_worker: None }
                            .effective(ft.task, 1, false)
                            .is_some(),
                        "{bench}: fail-fast surfaced task {} which the hash says succeeds",
                        ft.task
                    );
                }
                Err(e) => prop_assert!(false, "{bench}: unexpected error {e}"),
            }
            return Ok(());
        }

        let report = result.expect("retry/quarantine runs complete");
        let got_failed: Vec<u32> = report.fault.failed.iter().map(|f| f.task).collect();
        prop_assert_eq!(&got_failed, &exp_failed,
            "{} at {} threads rate {} seed {}: failed set diverges",
            bench, threads, rate_ppm, fault_seed);
        prop_assert_eq!(&report.fault.poisoned, &exp_poisoned,
            "{} at {} threads rate {} seed {}: poison cone diverges from DepGraph reachability",
            bench, threads, rate_ppm, fault_seed);
        if matches!(policy, FailurePolicy::Retry { .. }) {
            prop_assert_eq!(report.fault.retried_ok, exp_retried);
        }
        prop_assert!(report.accounting_reconciles(),
            "completed {} + failed {} + poisoned {} != tasks {}",
            report.completed(), report.fault.failed.len(),
            report.fault.poisoned.len(), report.tasks);
        // The completion log (which includes failed/poisoned tickets)
        // must still linearize the dependency oracle.
        prop_assert!(oracle.validate_order(&report.order).is_ok(),
            "{}: chaos completion log violates the oracle", bench);
        prop_assert_eq!(report.order.len(), trace.len());
    }
}

/// The renamer's `poison_cone` (what the executor propagates through)
/// and the `DepGraph` BFS (what this suite recomputes) are the same
/// closure on every benchmark — pinning that the two edge sets agree
/// on *reachability*, not just edge counts.
#[test]
fn renamer_poison_cone_matches_depgraph_reachability() {
    for bench in Benchmark::all() {
        let trace = bench.trace(Scale::Small, 5);
        let oracle = DepGraph::from_trace(&trace);
        let graph = Renamer::new().decode(&trace);
        // Seed a failure at every 7th task and compare closures.
        let failed: Vec<bool> = (0..trace.len()).map(|t| t % 7 == 3).collect();
        let cone = graph.poison_cone(&failed);
        let mut expect = vec![false; trace.len()];
        for t in 0..trace.len() {
            if failed[t] || expect[t] {
                for &s in oracle.succs(t) {
                    expect[s] = true;
                }
            }
        }
        assert_eq!(cone, expect, "{bench}: renamer cone != oracle reachability");
    }
}

/// One worker, same seed ⇒ the whole outcome is a pure function of the
/// inputs: completion log, failed set, poisoned set, retry accounting.
#[test]
fn single_worker_chaos_is_bit_deterministic() {
    let policy = FailurePolicy::Retry { max_attempts: 2, backoff: std::time::Duration::ZERO };
    for fault_seed in 0..16u64 {
        let trace = Benchmark::Cholesky.trace(Scale::Small, 11);
        let run = || {
            Executor::new(ExecConfig {
                threads: 1,
                payload: PayloadMode::Faulty { rate_ppm: 300_000, seed: fault_seed },
                policy,
                ..ExecConfig::default()
            })
            .run_oneshot(&trace)
            .expect("single-worker chaos run")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.order, b.order, "seed {fault_seed}: completion log drifted");
        assert_eq!(a.fault, b.fault, "seed {fault_seed}: failure accounting drifted");
    }
}

/// Failure sets are thread-count invariant (the interleaving is not):
/// the same seed at 1, 2, and 8 workers quarantines the same tasks.
#[test]
fn failure_sets_are_thread_count_invariant() {
    let trace = Benchmark::Stap.trace(Scale::Small, 11);
    let sets: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let r = Executor::new(chaos_cfg(threads, 200_000, 9, FailurePolicy::Quarantine))
                .run(&trace)
                .expect("quarantine run");
            let failed: Vec<u32> = r.fault.failed.iter().map(|f| f.task).collect();
            (failed, r.fault.poisoned)
        })
        .collect();
    assert_eq!(sets[0], sets[1], "1 vs 2 workers disagree on the failure sets");
    assert_eq!(sets[0], sets[2], "1 vs 8 workers disagree on the failure sets");
}
