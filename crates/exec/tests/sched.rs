//! Correctness matrix for the pluggable scheduling core (DESIGN.md
//! §13): every [`SchedKind`] must preserve the executor's three
//! standing contracts, because a policy only chooses among *ready*
//! tasks —
//!
//! - **Oracle linearization** — a proptest over policies × seeds ×
//!   {2, 4, 8} threads × {two-phase replay, pipelined stream}: every
//!   completion log linearizes the `DepGraph`.
//! - **Chaos determinism** — injection is a pure function of
//!   `(fault seed, task, attempt)`, so the quarantined failure sets
//!   must be identical across thread counts *and* across policies.
//! - **1-worker bit-determinism** — with one worker there is no race
//!   for any policy to resolve, so two oneshot runs must produce
//!   byte-identical completion logs (FIFO's log differs from LIFO's,
//!   but each must equal itself).

use proptest::prelude::*;
use tss_exec::{ExecConfig, Executor, FailurePolicy, PayloadMode, SchedKind};
use tss_trace::DepGraph;
use tss_workloads::{Benchmark, Scale};

fn cfg(kind: SchedKind, threads: usize, seed: u64) -> ExecConfig {
    ExecConfig {
        threads,
        sched: kind,
        seed,
        // Locality shaping; ignored (identity) by the other policies.
        classes: 2,
        domains: if threads >= 2 { 2 } else { 1 },
        validate: false,
        ..ExecConfig::default()
    }
}

#[test]
fn one_worker_replay_is_bit_deterministic_for_every_policy() {
    for kind in SchedKind::all() {
        for b in [Benchmark::Cholesky, Benchmark::H264, Benchmark::Stap] {
            let trace = b.trace(Scale::Small, 7);
            let run = |seed| {
                Executor::new(ExecConfig {
                    payload: PayloadMode::Mixed { time_scale: 0.05 },
                    ..cfg(kind, 1, seed)
                })
                .run_oneshot(&trace)
                .expect("replay failed")
            };
            let first = run(1);
            let second = run(1);
            assert_eq!(
                first.order,
                second.order,
                "{b} under {}: 1-worker order drifted",
                kind.name()
            );
            let other_seed = run(99);
            assert_eq!(
                first.order,
                other_seed.order,
                "{b} under {}: seed leaked into the 1-worker order",
                kind.name()
            );
            assert_eq!(first.total_steals(), 0);
        }
    }
}

/// FIFO really is a different discipline, not a renamed LIFO: on a
/// wide fan-out the 1-worker completion logs must diverge.
#[test]
fn fifo_and_lifo_disagree_on_a_fan_out() {
    let trace = Benchmark::KMeans.trace(Scale::Small, 3);
    let lifo = Executor::new(cfg(SchedKind::Lifo, 1, 1)).run_oneshot(&trace).expect("lifo");
    let fifo = Executor::new(cfg(SchedKind::Fifo, 1, 1)).run_oneshot(&trace).expect("fifo");
    assert_ne!(lifo.order, fifo.order, "policies are indistinguishable on a fan-out");
}

/// Quarantined failure sets are a pure function of the fault seed —
/// invariant across thread counts and across scheduling policies
/// (which only permute *successful* execution order).
#[test]
fn chaos_failure_sets_are_thread_count_and_policy_invariant() {
    let trace = Benchmark::Cholesky.trace(Scale::Small, 5);
    let mut reference: Option<(Vec<u32>, Vec<u32>)> = None;
    for kind in SchedKind::all() {
        for threads in [1usize, 2, 4] {
            let report = Executor::new(ExecConfig {
                payload: PayloadMode::Faulty { rate_ppm: 50_000, seed: 9 },
                policy: FailurePolicy::Quarantine,
                ..cfg(kind, threads, 17)
            })
            .run_oneshot(&trace)
            .expect("chaos replay failed");
            let failed: Vec<u32> = report.fault.failed.iter().map(|f| f.task).collect();
            let sets = (failed, report.fault.poisoned.clone());
            match &reference {
                None => reference = Some(sets),
                Some(r) => assert_eq!(
                    r,
                    &sets,
                    "failure sets drifted under {} at {threads} threads",
                    kind.name()
                ),
            }
            assert!(report.accounting_reconciles(), "{} at {threads}", kind.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_policy_linearizes_the_oracle(
        seed in 1u32..50_000,
        thread_sel in 0u8..3,
        bench_sel in 0u8..9,
        kind_sel in 0u8..4,
        streamed_sel in 0u8..2,
    ) {
        let streamed = streamed_sel == 1;
        let threads = [2usize, 4, 8][thread_sel as usize];
        let bench = Benchmark::all()[bench_sel as usize];
        let kind = SchedKind::all()[kind_sel as usize];
        let trace = bench.trace(Scale::Small, seed as u64);
        let exec = Executor::new(cfg(kind, threads, seed as u64));
        let report = if streamed {
            exec.run(&trace).expect("streamed replay failed")
        } else {
            exec.run_oneshot(&trace).expect("replay failed")
        };
        let oracle = DepGraph::from_trace(&trace);
        prop_assert!(
            oracle.validate_order(&report.order).is_ok(),
            "{} under {} at {} threads, seed {} ({}): log violates the oracle",
            bench, kind.name(), threads, seed,
            if streamed { "stream" } else { "replay" }
        );
        prop_assert_eq!(report.order.len(), trace.len());
        let executed: u64 = report.workers.iter().map(|w| w.executed).sum();
        prop_assert_eq!(executed as usize, trace.len());
    }
}
