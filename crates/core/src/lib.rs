//! System assembly and the experiment API: build a complete task
//! superscalar machine (or its software-runtime / sequential baselines),
//! run a workload through it, and collect a [`RunReport`] with the
//! paper's metrics.
//!
//! ```
//! use tss_core::SystemBuilder;
//! use tss_workloads::{Benchmark, Scale};
//!
//! let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
//! let hw = SystemBuilder::new().processors(32).run_hardware(&trace);
//! let sw = SystemBuilder::new().processors(32).run_software(&trace);
//! assert!(hw.speedup() > 1.0);
//! assert!(hw.makespan > 0 && sw.makespan > 0);
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod fabric;
pub mod report;
pub mod store;

use std::sync::Arc;

use tss_backend::{cmp_backend, BackendConfig, CorePool};
use tss_pipeline::assembly::{build_frontend, frontend_stats, FrontendStats};
use tss_pipeline::FrontendConfig;
use tss_runtime::{build_software_runtime, SoftDecoder, SoftRuntimeConfig};
use tss_sim::{cycles_to_ns, Cycle};
use tss_trace::{validate_schedule, ScheduleRecord, TaskTrace};

pub use report::Table;
pub use store::{system_sim, SystemSim, SystemStore};

/// Which engine executed a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The hardware task superscalar pipeline.
    Hardware,
    /// The software StarSs-like runtime.
    Software,
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which engine ran.
    pub engine: Engine,
    /// Benchmark name.
    pub benchmark: String,
    /// Worker processors.
    pub processors: usize,
    /// Number of tasks executed.
    pub tasks: usize,
    /// End-to-end cycles (all tasks completed and state drained).
    pub makespan: Cycle,
    /// Sum of task runtimes = sequential execution time.
    pub total_work: Cycle,
    /// Mean cycles between successive additions to the task graph.
    pub decode_rate_cycles: f64,
    /// Peak in-flight decoded tasks (the achieved window; 0 for the
    /// software runtime whose window is unbounded-by-design).
    pub window_peak: u32,
    /// Mean ready-queue wait in cycles.
    pub avg_queue_wait: f64,
    /// Core-busy fraction over the makespan.
    pub core_utilization: f64,
    /// Messages delivered by the event engine over the whole run.
    pub events: u64,
    /// Peak simultaneously pending events in the engine's queue.
    pub event_queue_peak: usize,
    /// Frontend-internal statistics (hardware runs only).
    pub frontend: Option<FrontendStats>,
    /// The full execution schedule.
    pub schedule: Vec<ScheduleRecord>,
}

impl RunReport {
    /// Speedup over sequential execution (Figure 16's metric).
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.total_work as f64 / self.makespan as f64
        }
    }

    /// Decode rate in nanoseconds per task.
    pub fn decode_rate_ns(&self) -> f64 {
        cycles_to_ns(self.decode_rate_cycles.round() as Cycle)
    }
}

/// Builds and runs complete systems.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    frontend: FrontendConfig,
    processors: usize,
    soft: SoftRuntimeConfig,
    validate: bool,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// The paper's default machine: 256 cores, 8 TRSs, 2 ORT/OVT pairs,
    /// 7 MB of frontend eDRAM, schedule validation on.
    pub fn new() -> Self {
        SystemBuilder {
            frontend: FrontendConfig::default(),
            processors: 256,
            soft: SoftRuntimeConfig::default(),
            validate: true,
        }
    }

    /// Sets the number of worker processors (32–256 in the paper).
    pub fn processors(mut self, p: usize) -> Self {
        self.processors = p;
        self
    }

    /// Replaces the frontend configuration.
    pub fn frontend(mut self, cfg: FrontendConfig) -> Self {
        self.frontend = cfg;
        self
    }

    /// Mutates the frontend configuration in place.
    pub fn with_frontend(mut self, f: impl FnOnce(&mut FrontendConfig)) -> Self {
        f(&mut self.frontend);
        self
    }

    /// Sets the software-runtime decode cost.
    pub fn software_runtime(mut self, cfg: SoftRuntimeConfig) -> Self {
        self.soft = cfg;
        self
    }

    /// Disables post-run oracle validation (it is O(edges); on by
    /// default because a schedule bug must never produce a figure).
    pub fn skip_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Runs `trace` through the hardware task superscalar pipeline.
    ///
    /// Clones the trace once; sweeps running the same trace repeatedly
    /// should build one `Arc` and call [`Self::run_hardware_arc`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (tasks left unfinished) or — with
    /// validation on — produces a schedule violating the dependency
    /// oracle. Both would be simulator bugs, never workload properties.
    pub fn run_hardware(&self, trace: &TaskTrace) -> RunReport {
        self.run_hardware_arc(&Arc::new(trace.clone()))
    }

    /// [`Self::run_hardware`] without the per-run trace clone.
    pub fn run_hardware_arc(&self, trace: &Arc<TaskTrace>) -> RunReport {
        let arc = Arc::clone(trace);
        // Monomorphized store: every delivery is a direct match arm, and
        // stats extraction below needs no `Any` downcasts (§9.1).
        let mut sim = system_sim();
        let backend_cfg = BackendConfig::for_cores(self.processors);
        let topo = build_frontend(&mut sim, arc.clone(), &self.frontend, cmp_backend(backend_cfg));
        sim.run();

        let pool = sim.component::<CorePool>(topo.backend);
        assert_eq!(
            pool.completed() as usize,
            trace.len(),
            "pipeline deadlock: {}/{} tasks completed",
            pool.completed(),
            trace.len()
        );
        let schedule = pool.schedule().to_vec();
        if self.validate {
            let graph = trace.dep_graph();
            validate_schedule(&graph, &schedule).expect("hardware schedule violates the oracle");
        }
        let stats = frontend_stats(&sim, &topo, &self.frontend);
        assert_eq!(stats.leaked_tasks, 0, "frontend state leaked after drain");
        let makespan = schedule.iter().map(|r| r.end).max().unwrap_or(0);
        RunReport {
            engine: Engine::Hardware,
            benchmark: trace.name().to_string(),
            processors: self.processors,
            tasks: trace.len(),
            makespan,
            total_work: trace.total_runtime(),
            decode_rate_cycles: stats.decode_rate_cycles,
            window_peak: stats.window_peak,
            avg_queue_wait: pool.avg_queue_wait(),
            core_utilization: pool.utilization(makespan),
            events: sim.events_processed(),
            event_queue_peak: sim.peak_queue_depth(),
            frontend: Some(stats),
            schedule,
        }
    }

    /// Runs `trace` through the software StarSs-like runtime.
    ///
    /// Clones the trace once; see [`Self::run_software_arc`].
    ///
    /// # Panics
    ///
    /// Panics on an incomplete run or (with validation on) an
    /// oracle-violating schedule.
    pub fn run_software(&self, trace: &TaskTrace) -> RunReport {
        self.run_software_arc(&Arc::new(trace.clone()))
    }

    /// [`Self::run_software`] without the per-run trace clone.
    pub fn run_software_arc(&self, trace: &Arc<TaskTrace>) -> RunReport {
        let arc = Arc::clone(trace);
        let mut sim = system_sim();
        let backend_cfg = BackendConfig::for_cores(self.processors);
        let (dec, pool_id) = build_software_runtime(&mut sim, arc, &self.soft, backend_cfg);
        sim.run();

        let decoder = sim.component::<SoftDecoder>(dec);
        assert_eq!(decoder.tasks_completed(), trace.len(), "software runtime did not finish");
        let pool = sim.component::<CorePool>(pool_id);
        let schedule = pool.schedule().to_vec();
        if self.validate {
            let graph = trace.dep_graph();
            validate_schedule(&graph, &schedule).expect("software schedule violates the oracle");
        }
        let times = decoder.decode_times();
        let decode_rate = if times.len() >= 2 {
            (times[times.len() - 1] - times[0]) as f64 / (times.len() - 1) as f64
        } else {
            0.0
        };
        let makespan = schedule.iter().map(|r| r.end).max().unwrap_or(0);
        RunReport {
            engine: Engine::Software,
            benchmark: trace.name().to_string(),
            processors: self.processors,
            tasks: trace.len(),
            makespan,
            total_work: trace.total_runtime(),
            decode_rate_cycles: decode_rate,
            window_peak: 0,
            avg_queue_wait: pool.avg_queue_wait(),
            core_utilization: pool.utilization(makespan),
            events: sim.events_processed(),
            event_queue_peak: sim.peak_queue_depth(),
            frontend: None,
            schedule,
        }
    }
}

/// Re-exported configuration types for downstream convenience.
pub use tss_pipeline::TimingParams;
/// Alias kept for the facade's prelude.
pub type ExperimentConfig = FrontendConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use tss_workloads::{Benchmark, Scale};

    #[test]
    fn hardware_beats_software_on_matmul_small() {
        // MatMul at 128p: 100 independent chains of 23 us tasks. The
        // software decoder plateaus near 23 us / 700 ns = ~33x; the
        // hardware pipeline is not decode-limited.
        let trace = Benchmark::MatMul.trace(Scale::Small, 2);
        let hw = SystemBuilder::new().processors(128).run_hardware(&trace);
        let sw = SystemBuilder::new().processors(128).run_software(&trace);
        assert!(hw.speedup() > 1.0);
        assert!(hw.speedup() > sw.speedup(), "hw {:.1}x vs sw {:.1}x", hw.speedup(), sw.speedup());
    }

    #[test]
    fn hardware_decode_is_an_order_of_magnitude_faster() {
        // Section II: software decodes at ~700 ns/task; the pipeline must
        // be many times faster.
        let trace = Benchmark::MatMul.trace(Scale::Small, 2);
        let hw = SystemBuilder::new().processors(128).run_hardware(&trace);
        let sw = SystemBuilder::new().processors(128).run_software(&trace);
        assert!(
            hw.decode_rate_ns() * 4.0 < sw.decode_rate_ns(),
            "hw {} ns vs sw {} ns",
            hw.decode_rate_ns(),
            sw.decode_rate_ns()
        );
    }

    #[test]
    fn speedup_grows_with_processors() {
        // Knn is embarrassingly parallel (hundreds-wide).
        let trace = Benchmark::Knn.trace(Scale::Small, 3);
        let s32 = SystemBuilder::new().processors(32).run_hardware(&trace).speedup();
        let s128 = SystemBuilder::new().processors(128).run_hardware(&trace).speedup();
        assert!(s128 > s32 * 1.5, "32p: {s32:.1}, 128p: {s128:.1}");
    }

    #[test]
    fn reports_carry_frontend_stats_only_for_hardware() {
        let trace = Benchmark::Stap.trace(Scale::Small, 1);
        let hw = SystemBuilder::new().processors(32).run_hardware(&trace);
        let sw = SystemBuilder::new().processors(32).run_software(&trace);
        assert!(hw.frontend.is_some());
        assert!(sw.frontend.is_none());
        assert_eq!(hw.tasks, trace.len());
        assert!(hw.window_peak > 0);
    }
}
