//! Plain-text table rendering for the experiment harnesses: every
//! `tss-bench` binary prints its table/figure through this (aligned
//! ASCII for the terminal, CSV for plotting).

/// A simple aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let joined: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            joined.join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// One-line `k/n (pct%)` summary for failure accounting columns (the
/// chaos harness prints `failed`, `poisoned`, … through this so the
/// table and the human-readable run log agree on formatting).
pub fn fmt_count_pct(count: usize, total: usize) -> String {
    if total == 0 {
        return "0/0".to_string();
    }
    format!("{count}/{total} ({:.1}%)", 100.0 * count as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[4].len());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "# T\na,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(183.0, 0), "183");
    }

    #[test]
    fn fmt_count_pct_handles_zero_total() {
        assert_eq!(fmt_count_pct(0, 0), "0/0");
        assert_eq!(fmt_count_pct(3, 60), "3/60 (5.0%)");
    }
}
