//! The sweep fabric (ISSUE 5 tentpole): a scoped worker pool that fans
//! *independent* simulation points across threads.
//!
//! The paper's evaluation (Section VI) is a large surface of independent
//! runs — `(num_trs, num_ort)` grids, capacity ladders, per-benchmark
//! rows — and every point is a complete, single-threaded, deterministic
//! simulation. The fabric exploits exactly that shape: workers claim
//! points from a shared cursor, each point's result is written into its
//! own pre-assigned slot, and the caller receives results **in point
//! order** regardless of which worker finished when. Per-point
//! simulations stay single-threaded, so each point's output is
//! bit-identical to a serial run; only wall-clock completion order
//! varies — which is why every routed harness binary produces
//! byte-identical tables at any `--jobs` value (gated in CI by diffing
//! `fig13 --jobs 2` against `--jobs 1`; DESIGN.md §9.3).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default `--jobs` value: the host's available parallelism (1 when
/// it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over every point, fanning across `jobs` worker threads, and
/// returns the results in point order.
///
/// `jobs` is clamped to `[1, points.len()]`; `jobs <= 1` degenerates to
/// a plain serial map (no threads spawned). A panicking point propagates
/// the panic to the caller once the scope joins.
pub fn sweep<P, R, F>(jobs: usize, points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = points.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return points.into_iter().map(f).collect();
    }
    // Hand-rolled claim/slot scheme (the workspace is offline — no rayon):
    // a shared cursor assigns each point to exactly one worker; the
    // result lands in the point's own slot, pinning output order to
    // input order. The per-slot mutexes are uncontended by construction
    // (one owner each).
    let cursor = AtomicUsize::new(0);
    let inputs: Vec<Mutex<Option<P>>> = points.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let p = inputs[i]
                    .lock()
                    .expect("fabric input poisoned")
                    .take()
                    .expect("point claimed twice");
                let r = f(p);
                *outputs[i].lock().expect("fabric output poisoned") = Some(r);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("fabric output poisoned")
                .expect("worker finished without a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_point_order() {
        for jobs in [1, 2, 4, 7] {
            let points: Vec<usize> = (0..53).collect();
            let out = sweep(jobs, points.clone(), |p| p * 10);
            assert_eq!(out, points.iter().map(|p| p * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        let out = sweep(64, vec![1, 2, 3], |p| p + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_point_set_is_fine() {
        let out: Vec<u32> = sweep(8, Vec::<u32>::new(), |p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_equals_serial_for_stateful_work() {
        // Each point is an independent "simulation": result depends only
        // on the point, never on scheduling.
        let f = |p: u64| {
            let mut x = p;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            x
        };
        let points: Vec<u64> = (0..40).collect();
        assert_eq!(sweep(1, points.clone(), f), sweep(4, points, f));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
