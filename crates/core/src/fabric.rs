//! The sweep fabric (ISSUE 5 tentpole): a scoped worker pool that fans
//! *independent* simulation points across threads.
//!
//! The paper's evaluation (Section VI) is a large surface of independent
//! runs — `(num_trs, num_ort)` grids, capacity ladders, per-benchmark
//! rows — and every point is a complete, single-threaded, deterministic
//! simulation. The fabric exploits exactly that shape: workers claim
//! points from a shared cursor, each point's result is written into its
//! own pre-assigned slot, and the caller receives results **in point
//! order** regardless of which worker finished when. Per-point
//! simulations stay single-threaded, so each point's output is
//! bit-identical to a serial run; only wall-clock completion order
//! varies — which is why every routed harness binary produces
//! byte-identical tables at any `--jobs` value (gated in CI by diffing
//! `fig13 --jobs 2` against `--jobs 1`; DESIGN.md §9.3).

use tss_exec::sync::atomic::{AtomicUsize, Ordering};
use tss_exec::sync::Mutex;

/// The default `--jobs` value: the host's available parallelism (1 when
/// it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The claim/slot core of [`sweep`] (hand-rolled — the workspace is
/// offline, no rayon): a shared cursor assigns each point index to
/// exactly one worker, and each result lands in the point's own slot,
/// pinning output order to input order. The per-slot mutexes are
/// uncontended by construction (one owner each).
///
/// Factored out of the `std::thread::scope` plumbing so the
/// model-checked tests (DESIGN.md §10.3) can drive the same claim
/// protocol on scheduler-controlled threads.
pub struct SlotClaims<P, R> {
    cursor: AtomicUsize,
    inputs: Vec<Mutex<Option<P>>>,
    outputs: Vec<Mutex<Option<R>>>,
}

impl<P, R> SlotClaims<P, R> {
    /// Wraps every point in its claim slot and an empty result slot.
    pub fn new(points: Vec<P>) -> Self {
        let inputs: Vec<Mutex<Option<P>>> =
            points.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let outputs: Vec<Mutex<Option<R>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
        SlotClaims { cursor: AtomicUsize::new(0), inputs, outputs }
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether there are no points at all.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Claims the next unclaimed point, or `None` once the cursor is
    /// past the end. Relaxed suffices on the cursor: the point payload
    /// is handed over by the slot mutex, not by the counter (the
    /// fetch_add's RMW atomicity alone guarantees unique indices —
    /// model-checked by `fabric_claims_are_exclusive`).
    ///
    /// # Panics
    ///
    /// Panics if an index is ever handed to two workers ("point claimed
    /// twice") — the invariant the model tests pound on.
    pub fn claim(&self) -> Option<(usize, P)> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= self.inputs.len() {
            return None;
        }
        let p = self.inputs[i]
            .lock()
            .expect("fabric input poisoned")
            .take()
            .expect("point claimed twice");
        Some((i, p))
    }

    /// Deposits point `i`'s result in its slot.
    pub fn complete(&self, i: usize, r: R) {
        *self.outputs[i].lock().expect("fabric output poisoned") = Some(r);
    }

    /// One worker body: claim, compute, deposit, until exhausted.
    pub fn run_worker(&self, f: &(impl Fn(P) -> R + ?Sized)) {
        while let Some((i, p)) = self.claim() {
            self.complete(i, f(p));
        }
    }

    /// Tears down into the results, in point order.
    ///
    /// # Panics
    ///
    /// Panics if any slot is still empty (a worker exited early).
    pub fn into_results(self) -> Vec<R> {
        self.outputs
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("fabric output poisoned")
                    .expect("worker finished without a result")
            })
            .collect()
    }
}

/// Runs `f` over every point, fanning across `jobs` worker threads, and
/// returns the results in point order.
///
/// `jobs` is clamped to `[1, points.len()]`; `jobs <= 1` degenerates to
/// a plain serial map (no threads spawned). A panicking point propagates
/// the panic to the caller once the scope joins.
pub fn sweep<P, R, F>(jobs: usize, points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = points.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return points.into_iter().map(f).collect();
    }
    let claims = SlotClaims::new(points);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| claims.run_worker(&f));
        }
    });
    claims.into_results()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_point_order() {
        for jobs in [1, 2, 4, 7] {
            let points: Vec<usize> = (0..53).collect();
            let out = sweep(jobs, points.clone(), |p| p * 10);
            assert_eq!(out, points.iter().map(|p| p * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        let out = sweep(64, vec![1, 2, 3], |p| p + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_point_set_is_fine() {
        let out: Vec<u32> = sweep(8, Vec::<u32>::new(), |p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_equals_serial_for_stateful_work() {
        // Each point is an independent "simulation": result depends only
        // on the point, never on scheduling.
        let f = |p: u64| {
            let mut x = p;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            x
        };
        let points: Vec<u64> = (0..40).collect();
        assert_eq!(sweep(1, points.clone(), f), sweep(4, points, f));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}

/// Model-checked interleaving tests for the claim/slot core (DESIGN.md
/// §10.3). Compiled only under `RUSTFLAGS="--cfg tss_model_check"`,
/// where `tss_exec::sync` swaps the cursor and slot mutexes for
/// shuttle's scheduler-instrumented doubles.
#[cfg(all(test, tss_model_check))]
mod model_tests {
    use super::*;
    use shuttle::thread;
    use std::sync::Arc;

    /// Two workers racing the cursor over three points: in every
    /// interleaving (exhaustive) each point is claimed exactly once
    /// ("point claimed twice" would panic the schedule), every slot is
    /// filled, and results come back in point order. This is the
    /// fetch_add-uniqueness argument that lets the cursor stay Relaxed.
    #[test]
    fn model_fabric_claims_are_exclusive() {
        let report = shuttle::check_exhaustive(300_000, || {
            let claims = Arc::new(SlotClaims::new(vec![10usize, 20, 30]));
            let c2 = claims.clone();
            let w = thread::spawn(move || c2.run_worker(&|p: usize| p + 1));
            claims.run_worker(&|p: usize| p + 1);
            w.join().unwrap();
            let claims = Arc::try_unwrap(claims).ok().expect("worker still holds the fabric");
            assert_eq!(claims.into_results(), vec![11, 21, 31]);
        });
        assert!(report.complete, "budget too small: {} schedules", report.schedules);
    }
}
