//! The monomorphized component store for assembled systems (ISSUE 5
//! tentpole, DESIGN.md §9.1).
//!
//! [`SystemStore`] is an enum over every concrete component type a
//! hardware-pipeline or software-runtime system contains. The event
//! loop's `deliver` is a direct match on the variant — the compiler sees
//! each handler's concrete type, so a delivery is a branch plus a direct
//! (inlinable) call instead of `DynStore`'s virtual call, and post-run
//! statistics extraction is a variant match instead of an `Any`
//! downcast.
//!
//! Adding a component type = one line in the `system_store!` invocation.

use tss_backend::CorePool;
use tss_pipeline::assembly::InstantBackend;
use tss_pipeline::{Gateway, Generator, Msg, OrtOvt, Trs};
use tss_runtime::SoftDecoder;
use tss_sim::{Component, ComponentId, ComponentStore, Context, Extract, Insert};

/// Generates the component enum, the store, and the per-type
/// [`Insert`]/[`Extract`] impls.
macro_rules! system_store {
    ($(#[$meta:meta] $variant:ident($ty:ty)),+ $(,)?) => {
        /// One system component, by concrete type.
        #[allow(clippy::large_enum_variant)] // deliberately unboxed: the
        // store is built once per run and dispatch locality beats size.
        pub enum SystemComponent {
            $(#[$meta] $variant($ty)),+
        }

        /// Monomorphized store over every system component type.
        #[derive(Default)]
        pub struct SystemStore {
            items: Vec<SystemComponent>,
        }

        impl SystemStore {
            /// An empty store.
            pub fn new() -> Self {
                Self::default()
            }
        }

        impl ComponentStore<Msg> for SystemStore {
            #[inline]
            fn deliver(&mut self, dst: ComponentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
                match &mut self.items[dst.index()] {
                    $(SystemComponent::$variant(c) => c.on_message(msg, ctx)),+
                }
            }

            fn len(&self) -> usize {
                self.items.len()
            }
        }

        $(
            impl Insert<$ty> for SystemStore {
                fn insert(&mut self, c: $ty) -> usize {
                    self.items.push(SystemComponent::$variant(c));
                    self.items.len() - 1
                }
            }

            impl Extract<$ty> for SystemStore {
                fn get(&self, index: usize) -> Option<&$ty> {
                    match self.items.get(index)? {
                        SystemComponent::$variant(c) => Some(c),
                        _ => None,
                    }
                }

                fn get_mut(&mut self, index: usize) -> Option<&mut $ty> {
                    match self.items.get_mut(index)? {
                        SystemComponent::$variant(c) => Some(c),
                        _ => None,
                    }
                }
            }
        )+
    };
}

system_store! {
    /// A task-generating thread.
    Generator(Generator),
    /// The pipeline gateway.
    Gateway(Gateway),
    /// A task reservation station.
    Trs(Trs),
    /// An ORT/OVT pair.
    OrtOvt(OrtOvt),
    /// The CMP backend (ready queue + cores + ring).
    CorePool(CorePool),
    /// The idealized one-core-per-task backend.
    InstantBackend(InstantBackend),
    /// The software StarSs-like serial decoder.
    SoftDecoder(SoftDecoder),
}

/// A simulation over the monomorphized system store.
pub type SystemSim = tss_sim::Simulation<Msg, SystemStore>;

/// An empty [`SystemSim`].
pub fn system_sim() -> SystemSim {
    SystemSim::with_store(SystemStore::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tss_pipeline::assembly::{build_frontend, frontend_stats, instant_backend};
    use tss_pipeline::FrontendConfig;
    use tss_trace::{OperandDesc, TaskTrace};

    #[test]
    fn system_store_runs_the_frontend_and_extracts_stats() {
        let mut trace = TaskTrace::new("demo");
        let k = trace.add_kernel("kern");
        trace.push_task(k, 1_000, vec![OperandDesc::output(0x1000, 512)]);
        trace.push_task(k, 1_000, vec![OperandDesc::input(0x1000, 512)]);
        let mut sim = system_sim();
        let cfg = FrontendConfig::default();
        let topo = build_frontend(&mut sim, Arc::new(trace), &cfg, instant_backend);
        sim.run();
        let stats = frontend_stats(&sim, &topo, &cfg);
        assert_eq!(stats.tasks_decoded, 2);
        let backend = sim.component::<InstantBackend>(topo.backend);
        assert_eq!(backend.completed(), 2);
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn wrong_variant_extraction_panics() {
        let mut sim = system_sim();
        let id = sim.add(SoftDecoder::new(
            &TaskTrace::new("empty"),
            &tss_runtime::SoftRuntimeConfig::default(),
            tss_sim::ComponentId::from_index(0),
        ));
        let _ = sim.component::<Gateway>(id);
    }
}
