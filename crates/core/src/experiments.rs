//! Sweep drivers for the paper's evaluation (Section VI): one function
//! per experiment family, shared by the `tss-bench` harness binaries and
//! the integration tests.
//!
//! Every sweep fans its independent points across `jobs` worker threads
//! through [`crate::fabric::sweep`]; results come back in point order,
//! so the produced tables are byte-identical at any `jobs` value (each
//! point is a complete single-threaded deterministic simulation —
//! DESIGN.md §9.3). `jobs = 1` runs serially on the calling thread.

use std::sync::Arc;

use crate::fabric;
use crate::{RunReport, SystemBuilder};
use tss_pipeline::FrontendConfig;
use tss_trace::TaskTrace;

/// One point of the Figure 12/13 decode-rate surface.
#[derive(Debug, Clone)]
pub struct DecodeRatePoint {
    /// TRS count.
    pub num_trs: usize,
    /// ORT (and OVT) count.
    pub num_ort: usize,
    /// Measured decode rate in cycles/task.
    pub rate_cycles: f64,
}

/// Measures the decode rate (cycles between successive task-graph
/// additions) for every `(num_trs, num_ort)` combination — Figures 12
/// and 13 — fanning the grid across `jobs` threads.
///
/// The figure studies *pipeline parallelism*, so storage capacities are
/// made abundant (64 MB TRS, 16 MB ORT/OVT): otherwise window
/// back-pressure (the subject of Figures 14–15) throttles decode to the
/// 256-core drain rate and masks the module-count effect.
pub fn decode_rate_sweep(
    trace: &TaskTrace,
    trs_counts: &[usize],
    ort_counts: &[usize],
    jobs: usize,
) -> Vec<DecodeRatePoint> {
    let arc = Arc::new(trace.clone());
    let mut points = Vec::with_capacity(trs_counts.len() * ort_counts.len());
    for &num_ort in ort_counts {
        for &num_trs in trs_counts {
            points.push((num_trs, num_ort));
        }
    }
    fabric::sweep(jobs, points, |(num_trs, num_ort)| {
        let report = SystemBuilder::new()
            .processors(256)
            .with_frontend(|f| {
                f.num_trs = num_trs;
                f.num_ort = num_ort;
                f.trs_total_bytes = 64 << 20;
                f.ort_total_bytes = 16 << 20;
                f.ovt_total_bytes = 16 << 20;
            })
            .skip_validation() // sweeps revalidate nothing: points are timing-only
            .run_hardware_arc(&arc);
        DecodeRatePoint { num_trs, num_ort, rate_cycles: report.decode_rate_cycles }
    })
}

/// One point of a capacity sweep (Figures 14 and 15).
#[derive(Debug, Clone)]
pub struct CapacityPoint {
    /// The swept total capacity in bytes.
    pub capacity_bytes: u64,
    /// Speedup over sequential execution.
    pub speedup: f64,
    /// Achieved window peak (in-flight tasks).
    pub window_peak: u32,
}

/// Figure 14: speedup as a function of the total ORT capacity (OVT
/// capacity is swept alongside, as the paper pairs them).
pub fn ort_capacity_sweep(
    trace: &TaskTrace,
    capacities: &[u64],
    processors: usize,
    jobs: usize,
) -> Vec<CapacityPoint> {
    let arc = Arc::new(trace.clone());
    fabric::sweep(jobs, capacities.to_vec(), |cap| {
        let report = SystemBuilder::new()
            .processors(processors)
            .with_frontend(|f| {
                f.ort_total_bytes = cap;
                f.ovt_total_bytes = cap;
            })
            .skip_validation()
            .run_hardware_arc(&arc);
        CapacityPoint {
            capacity_bytes: cap,
            speedup: report.speedup(),
            window_peak: report.window_peak,
        }
    })
}

/// Figure 15: speedup as a function of the total TRS capacity.
pub fn trs_capacity_sweep(
    trace: &TaskTrace,
    capacities: &[u64],
    processors: usize,
    jobs: usize,
) -> Vec<CapacityPoint> {
    let arc = Arc::new(trace.clone());
    fabric::sweep(jobs, capacities.to_vec(), |cap| {
        let report = SystemBuilder::new()
            .processors(processors)
            .with_frontend(|f| f.trs_total_bytes = cap)
            .skip_validation()
            .run_hardware_arc(&arc);
        CapacityPoint {
            capacity_bytes: cap,
            speedup: report.speedup(),
            window_peak: report.window_peak,
        }
    })
}

/// One point of the Figure 16 scalability comparison.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Processor count.
    pub processors: usize,
    /// Hardware-pipeline speedup.
    pub hardware: f64,
    /// Software-runtime speedup.
    pub software: f64,
}

/// Figure 16: hardware vs software speedups over 32–256 processors.
/// Each processor count is one fabric point running both engines.
pub fn scalability_sweep(
    trace: &TaskTrace,
    processor_counts: &[usize],
    jobs: usize,
) -> Vec<ScalabilityPoint> {
    let arc = Arc::new(trace.clone());
    fabric::sweep(jobs, processor_counts.to_vec(), |p| {
        let hw = SystemBuilder::new().processors(p).skip_validation().run_hardware_arc(&arc);
        let sw = SystemBuilder::new().processors(p).skip_validation().run_software_arc(&arc);
        ScalabilityPoint { processors: p, hardware: hw.speedup(), software: sw.speedup() }
    })
}

/// Runs one benchmark at the paper's chosen operating point (8 TRS,
/// 2 ORT/OVT, 7 MB eDRAM, 256 processors) — the headline configuration.
pub fn paper_operating_point(trace: &TaskTrace) -> RunReport {
    SystemBuilder::new().frontend(FrontendConfig::default()).processors(256).run_hardware(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_workloads::{Benchmark, Scale};

    #[test]
    fn decode_rate_improves_with_more_trs() {
        let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
        let pts = decode_rate_sweep(&trace, &[1, 8], &[2], 1);
        assert!(
            pts[1].rate_cycles < pts[0].rate_cycles,
            "8 TRS ({:.0}) must decode faster than 1 TRS ({:.0})",
            pts[1].rate_cycles,
            pts[0].rate_cycles
        );
    }

    #[test]
    fn trs_capacity_grows_window_and_speedup() {
        let trace = Benchmark::KMeans.trace(Scale::Small, 1);
        let pts = trs_capacity_sweep(&trace, &[32 << 10, 2 << 20], 64, 1);
        assert!(pts[1].window_peak >= pts[0].window_peak);
        assert!(pts[1].speedup >= pts[0].speedup * 0.95);
    }

    #[test]
    fn scalability_produces_monotonicish_hw_curve() {
        let trace = Benchmark::MatMul.trace(Scale::Small, 1);
        let pts = scalability_sweep(&trace, &[32, 128], 1);
        assert!(pts[1].hardware > pts[0].hardware);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        // The ISSUE 5 determinism contract: --jobs K output == --jobs 1
        // output for every routed sweep. Points are compared exactly
        // (the per-point simulations are bit-deterministic).
        let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
        let serial = decode_rate_sweep(&trace, &[1, 2], &[1, 2], 1);
        let parallel = decode_rate_sweep(&trace, &[1, 2], &[1, 2], 3);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!((s.num_trs, s.num_ort), (p.num_trs, p.num_ort));
            assert_eq!(s.rate_cycles.to_bits(), p.rate_cycles.to_bits(), "point diverged");
        }
        let serial = scalability_sweep(&trace, &[32, 64], 1);
        let parallel = scalability_sweep(&trace, &[32, 64], 2);
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.hardware.to_bits(), p.hardware.to_bits());
            assert_eq!(s.software.to_bits(), p.software.to_bits());
        }
    }
}
