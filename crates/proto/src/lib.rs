//! `tss-proto`: the typed, versioned, length-prefixed wire protocol
//! for submitting task graphs to a `tss-server` gateway
//! (DESIGN.md §14.1).
//!
//! Design constraints, in order:
//!
//! 1. **Decode never panics and never hangs.** Every frame arrives
//!    from an untrusted peer. All parsing is bounds-checked through
//!    [`wire::Cur`], every length field is capped *before* any
//!    allocation sizes off it, and the semantic invariants that
//!    [`tss_trace::TaskDesc::new`] enforces by panicking (operand
//!    count, scalar directionality) are re-checked here first so a
//!    hostile frame becomes a [`DecodeError`], never an abort. The
//!    fuzz suite (`tests/fuzz.rs`) pins this: arbitrary truncation or
//!    corruption of valid frames must yield `Err`, never a panic.
//! 2. **The graph IR is typed**, mirroring the ormdb compiled-query
//!    model (ROADMAP item 1): kernels are a declared table, operands
//!    carry the paper's *(type, base pointer, size, directionality)*
//!    tuple, and a graph streams as `OpenGraph` → `Tasks`* → `Seal`
//!    so a producer can submit into an open graph without holding the
//!    whole trace (the Pipeflow streaming-ingestion shape).
//! 3. **Every failure is a structured frame.** Servers answer broken
//!    input with [`Frame::SessionError`] / [`Frame::Reject`] carrying
//!    machine-readable reasons (`Overloaded{retry_after_ms}` included),
//!    so clients can distinguish "back off" from "your frame is junk".
//!
//! Frame layout: `[len: u32 LE][kind: u8][body]`, `len` covering kind
//! plus body and capped at [`MAX_FRAME`]. Only [`Frame::Hello`]
//! carries the magic, so a non-TSS peer is rejected on its first
//! frame with [`DecodeError::BadMagic`].

#![forbid(unsafe_code)]

pub mod graph;
pub mod wire;

pub use graph::{graph_frames, AssembleError, AssemblerLimits, GraphAssembler};
pub use wire::{
    decode_frame, decode_frame_bytes, encode_frame, read_frame, write_frame, DecodeError, Frame,
    GraphOutcome, RejectReason, SessionErrorKind, WireError,
};

/// Protocol magic, carried by `Hello` only: `"TSSP"` as LE bytes.
pub const MAGIC: u32 = u32::from_le_bytes(*b"TSSP");

/// Protocol version negotiated in `Hello`/`HelloAck`.
pub const VERSION: u16 = 1;

/// Hard ceiling on one frame's `len` field (kind + body). Anything
/// larger is rejected before any allocation: 4 MiB holds ~300k encoded
/// zero-operand tasks, far beyond the per-frame chunking clients use.
pub const MAX_FRAME: u32 = 4 << 20;

/// Byte cap for graph and kernel names.
pub const MAX_NAME: usize = 256;

/// Cap on kernels per graph (the wire carries kernel ids as `u16`).
pub const MAX_KERNELS: usize = u16::MAX as usize;
