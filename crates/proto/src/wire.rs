//! Frame model and codec (DESIGN.md §14.1).
//!
//! Encoding is little-endian fixed-width throughout; strings are
//! `u16` length + UTF-8 bytes; operand flags pack direction (2 bits)
//! and kind (1 bit) into one byte. Decoding is a single forward pass
//! over a bounds-checked cursor: no recursion, no seeking, no
//! allocation sized by an unvalidated length field.

use crate::{MAGIC, MAX_FRAME, MAX_KERNELS, MAX_NAME};
use std::io::{Read, Write};
use tss_trace::{Direction, KernelId, OperandDesc, OperandKind, TaskDesc, MAX_OPERANDS};

/// Why a server refused a graph (DESIGN.md §14.2). Every variant is a
/// protocol-level answer, not a transport failure: the session stays
/// usable after a reject (the peer may retry or move on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission control shed the graph: executor queue depth or the
    /// queued-task memory watermark tripped. Retry after the hint.
    Overloaded {
        /// Server's backoff hint, milliseconds.
        retry_after_ms: u32,
    },
    /// The session holds too many inflight (open + queued + running)
    /// graphs.
    QuotaExceeded {
        /// Graphs this session currently holds.
        inflight: u32,
        /// The per-session ceiling.
        quota: u32,
    },
    /// The graph broke a semantic rule (kernel id out of range, task
    /// count mismatch, ...). The offending graph is discarded.
    Malformed {
        /// Human-readable detail.
        detail: String,
    },
    /// The server is draining (DESIGN.md §14.4): no new admissions.
    Draining,
    /// The graph exceeds the per-graph task ceiling.
    TooLarge {
        /// Tasks the graph declared or accumulated.
        tasks: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// A `Tasks`/`Seal` frame referenced a graph id this session never
    /// opened (or already sealed).
    UnknownGraph,
    /// An `OpenGraph` reused a graph id that is still open.
    DuplicateGraph,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            RejectReason::QuotaExceeded { inflight, quota } => {
                write!(f, "quota exceeded ({inflight}/{quota} inflight graphs)")
            }
            RejectReason::Malformed { detail } => write!(f, "malformed graph: {detail}"),
            RejectReason::Draining => write!(f, "server is draining"),
            RejectReason::TooLarge { tasks, limit } => {
                write!(f, "graph too large ({tasks} tasks, limit {limit})")
            }
            RejectReason::UnknownGraph => write!(f, "unknown graph id"),
            RejectReason::DuplicateGraph => write!(f, "graph id already open"),
        }
    }
}

/// Terminal outcome of an *accepted* graph (DESIGN.md §14.4): every
/// accepted graph produces exactly one `Done` frame carrying one of
/// these, drain included — the no-silent-loss invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphOutcome {
    /// The graph drained. `failed`/`poisoned` report quarantined tasks
    /// (DESIGN.md §11); a fault-free run has both at 0.
    Completed {
        /// Tasks executed (incl. failed/poisoned).
        tasks: u64,
        /// Tasks whose payload failed terminally.
        failed: u32,
        /// Tasks poisoned by a failed producer.
        poisoned: u32,
        /// Executor wall time, microseconds.
        exec_wall_us: u64,
    },
    /// Cancelled by drain (or an explicit cancellation) before the
    /// graph drained.
    Cancelled {
        /// Tasks that had completed at the abort.
        completed: u64,
        /// Total tasks in the graph.
        tasks: u64,
    },
    /// The graph's propagated deadline expired mid-run.
    DeadlineExpired {
        /// Tasks that had completed at expiry.
        completed: u64,
        /// Total tasks in the graph.
        tasks: u64,
    },
    /// The run failed outright (fail-fast task failure, worker panic,
    /// oracle violation).
    Failed {
        /// Stringified [`tss_exec::ExecError`]-style cause.
        detail: String,
    },
}

impl GraphOutcome {
    /// Short machine-readable tag (used in reports and tests).
    pub fn tag(&self) -> &'static str {
        match self {
            GraphOutcome::Completed { .. } => "completed",
            GraphOutcome::Cancelled { .. } => "cancelled",
            GraphOutcome::DeadlineExpired { .. } => "deadline",
            GraphOutcome::Failed { .. } => "failed",
        }
    }
}

/// What kind of session-fatal error a [`Frame::SessionError`] reports.
/// After sending one the server closes the connection; framing can no
/// longer be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionErrorKind {
    /// The byte stream failed to decode (truncation, bad magic, ...).
    Decode,
    /// Frames decoded but broke the session state machine (e.g. a
    /// frame before `Hello`).
    Protocol,
    /// The server is closing the session as part of drain completion.
    Draining,
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client handshake: magic + proposed version.
    Hello {
        /// Highest protocol version the client speaks.
        version: u16,
    },
    /// Server handshake answer: the version the session will use.
    HelloAck {
        /// Accepted protocol version.
        version: u16,
    },
    /// Opens a graph for streaming submission.
    OpenGraph {
        /// Client-chosen graph id, unique among this session's open
        /// graphs.
        graph: u64,
        /// Completion deadline propagated into the executor watchdog
        /// (0 = none), milliseconds from admission.
        deadline_ms: u32,
        /// Graph (trace) name.
        name: String,
        /// Kernel name table; task frames reference it by index.
        kernels: Vec<String>,
    },
    /// Streams a batch of tasks into an open graph.
    Tasks {
        /// Target open graph.
        graph: u64,
        /// The batch, in program order.
        tasks: Vec<TaskDesc>,
    },
    /// Ends a graph's stream and requests admission.
    Seal {
        /// Target open graph.
        graph: u64,
        /// Declared total task count; must match what was streamed.
        tasks_total: u64,
    },
    /// Asks the server to drain and exit (DESIGN.md §14.4).
    Shutdown,
    /// Clean session close.
    Bye,
    /// The sealed graph was admitted and queued for execution.
    Accepted {
        /// The graph id echoed back.
        graph: u64,
    },
    /// The graph was refused; see [`RejectReason`].
    Reject {
        /// The graph id echoed back (0 for session-level rejects).
        graph: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Terminal report for an accepted graph.
    Done {
        /// The graph id echoed back.
        graph: u64,
        /// How it ended.
        outcome: GraphOutcome,
    },
    /// Session-fatal structured error; the server closes after this.
    SessionError {
        /// Failure class.
        kind: SessionErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// Acknowledges a `Shutdown` frame; `Done` frames for inflight
    /// graphs follow before the close.
    ShutdownAck,
}

// Frame kind bytes. Client-originated kinds sit below 0x80.
const K_HELLO: u8 = 0x01;
const K_OPEN: u8 = 0x02;
const K_TASKS: u8 = 0x03;
const K_SEAL: u8 = 0x04;
const K_SHUTDOWN: u8 = 0x05;
const K_BYE: u8 = 0x06;
const K_HELLO_ACK: u8 = 0x81;
const K_ACCEPTED: u8 = 0x82;
const K_REJECT: u8 = 0x83;
const K_DONE: u8 = 0x84;
const K_SESSION_ERROR: u8 = 0x85;
const K_SHUTDOWN_ACK: u8 = 0x86;

/// A structured decode failure. Always an `Err`, never a panic: the
/// fuzz suite feeds this codec arbitrarily corrupted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// `Hello` carried the wrong magic — the peer is not speaking this
    /// protocol at all.
    BadMagic {
        /// What arrived instead of [`MAGIC`].
        got: u32,
    },
    /// The `len` prefix exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// The offending length.
        len: u32,
    },
    /// A frame with `len == 0` (no kind byte).
    EmptyFrame,
    /// Unknown frame kind byte.
    UnknownKind {
        /// The offending kind.
        kind: u8,
    },
    /// The body ended before a field did.
    Truncated {
        /// Which field was being read.
        field: &'static str,
        /// Bytes the field needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The body is longer than the frame's fields.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A string field was not UTF-8.
    BadUtf8 {
        /// Which field.
        field: &'static str,
    },
    /// A name exceeded [`MAX_NAME`] or a kernel table [`MAX_KERNELS`].
    TooLong {
        /// Which field.
        field: &'static str,
        /// Declared length.
        len: usize,
        /// The cap.
        max: usize,
    },
    /// An enum discriminant byte was out of range.
    BadEnum {
        /// Which field.
        field: &'static str,
        /// The offending byte.
        got: u8,
    },
    /// A task declared more than [`MAX_OPERANDS`] operands (the TRS
    /// inode layout limit — `TaskDesc::new` would panic on this).
    TooManyOperands {
        /// Operand count declared.
        count: usize,
    },
    /// A scalar operand was not an input (`TaskDesc::new` would panic).
    ScalarNotInput,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic { got } => write!(f, "bad magic 0x{got:08x}"),
            DecodeError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME}")
            }
            DecodeError::EmptyFrame => write!(f, "zero-length frame"),
            DecodeError::UnknownKind { kind } => write!(f, "unknown frame kind 0x{kind:02x}"),
            DecodeError::Truncated { field, need, have } => {
                write!(f, "truncated at {field}: need {need} bytes, have {have}")
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame body")
            }
            DecodeError::BadUtf8 { field } => write!(f, "{field} is not UTF-8"),
            DecodeError::TooLong { field, len, max } => {
                write!(f, "{field} length {len} exceeds cap {max}")
            }
            DecodeError::BadEnum { field, got } => {
                write!(f, "bad {field} discriminant 0x{got:02x}")
            }
            DecodeError::TooManyOperands { count } => {
                write!(f, "task declares {count} operands; the TRS layout caps at {MAX_OPERANDS}")
            }
            DecodeError::ScalarNotInput => write!(f, "scalar operand is not an input"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Transport-level failure reading a frame off a stream.
#[derive(Debug)]
pub enum WireError {
    /// Clean EOF on a frame boundary (the peer closed).
    Closed,
    /// The stream died mid-frame or the socket failed. An
    /// `UnexpectedEof` here *is* the truncated-frame signal.
    Io(std::io::Error),
    /// The bytes arrived but failed to decode.
    Decode(DecodeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_operand(out: &mut Vec<u8>, o: &OperandDesc) {
    let dir = match o.dir {
        Direction::In => 0u8,
        Direction::Out => 1,
        Direction::InOut => 2,
    };
    let kind = match o.kind {
        OperandKind::Memory => 0u8,
        OperandKind::Scalar => 1,
    };
    out.push(dir | (kind << 2));
    out.extend_from_slice(&o.addr.to_le_bytes());
    out.extend_from_slice(&o.size.to_le_bytes());
}

fn put_task(out: &mut Vec<u8>, t: &TaskDesc) {
    out.extend_from_slice(&t.kernel.0.to_le_bytes());
    out.extend_from_slice(&t.runtime.to_le_bytes());
    debug_assert!(t.operands.len() <= MAX_OPERANDS);
    out.push(t.operands.len() as u8);
    for o in &t.operands {
        put_operand(out, o);
    }
}

fn put_reject(out: &mut Vec<u8>, r: &RejectReason) {
    match r {
        RejectReason::Overloaded { retry_after_ms } => {
            out.push(0);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        RejectReason::QuotaExceeded { inflight, quota } => {
            out.push(1);
            out.extend_from_slice(&inflight.to_le_bytes());
            out.extend_from_slice(&quota.to_le_bytes());
        }
        RejectReason::Malformed { detail } => {
            out.push(2);
            put_str(out, detail);
        }
        RejectReason::Draining => out.push(3),
        RejectReason::TooLarge { tasks, limit } => {
            out.push(4);
            out.extend_from_slice(&tasks.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        RejectReason::UnknownGraph => out.push(5),
        RejectReason::DuplicateGraph => out.push(6),
    }
}

fn put_outcome(out: &mut Vec<u8>, o: &GraphOutcome) {
    match o {
        GraphOutcome::Completed { tasks, failed, poisoned, exec_wall_us } => {
            out.push(0);
            out.extend_from_slice(&tasks.to_le_bytes());
            out.extend_from_slice(&failed.to_le_bytes());
            out.extend_from_slice(&poisoned.to_le_bytes());
            out.extend_from_slice(&exec_wall_us.to_le_bytes());
        }
        GraphOutcome::Cancelled { completed, tasks } => {
            out.push(1);
            out.extend_from_slice(&completed.to_le_bytes());
            out.extend_from_slice(&tasks.to_le_bytes());
        }
        GraphOutcome::DeadlineExpired { completed, tasks } => {
            out.push(2);
            out.extend_from_slice(&completed.to_le_bytes());
            out.extend_from_slice(&tasks.to_le_bytes());
        }
        GraphOutcome::Failed { detail } => {
            out.push(3);
            put_str(out, detail);
        }
    }
}

/// Encodes `frame` as one length-prefixed wire frame.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = vec![0u8; 4]; // length backpatched below
    match frame {
        Frame::Hello { version } => {
            out.push(K_HELLO);
            out.extend_from_slice(&MAGIC.to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
        }
        Frame::HelloAck { version } => {
            out.push(K_HELLO_ACK);
            out.extend_from_slice(&version.to_le_bytes());
        }
        Frame::OpenGraph { graph, deadline_ms, name, kernels } => {
            out.push(K_OPEN);
            out.extend_from_slice(&graph.to_le_bytes());
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            put_str(&mut out, name);
            debug_assert!(kernels.len() <= MAX_KERNELS);
            out.extend_from_slice(&(kernels.len() as u16).to_le_bytes());
            for k in kernels {
                put_str(&mut out, k);
            }
        }
        Frame::Tasks { graph, tasks } => {
            out.push(K_TASKS);
            out.extend_from_slice(&graph.to_le_bytes());
            out.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
            for t in tasks {
                put_task(&mut out, t);
            }
        }
        Frame::Seal { graph, tasks_total } => {
            out.push(K_SEAL);
            out.extend_from_slice(&graph.to_le_bytes());
            out.extend_from_slice(&tasks_total.to_le_bytes());
        }
        Frame::Shutdown => out.push(K_SHUTDOWN),
        Frame::Bye => out.push(K_BYE),
        Frame::Accepted { graph } => {
            out.push(K_ACCEPTED);
            out.extend_from_slice(&graph.to_le_bytes());
        }
        Frame::Reject { graph, reason } => {
            out.push(K_REJECT);
            out.extend_from_slice(&graph.to_le_bytes());
            put_reject(&mut out, reason);
        }
        Frame::Done { graph, outcome } => {
            out.push(K_DONE);
            out.extend_from_slice(&graph.to_le_bytes());
            put_outcome(&mut out, outcome);
        }
        Frame::SessionError { kind, detail } => {
            out.push(K_SESSION_ERROR);
            out.push(match kind {
                SessionErrorKind::Decode => 0,
                SessionErrorKind::Protocol => 1,
                SessionErrorKind::Draining => 2,
            });
            put_str(&mut out, detail);
        }
        Frame::ShutdownAck => out.push(K_SHUTDOWN_ACK),
    }
    let len = (out.len() - 4) as u32;
    debug_assert!(len <= MAX_FRAME, "encoded frame exceeds MAX_FRAME");
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked forward cursor over one frame body.
struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn bytes(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { field, need: n, have: self.remaining() });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, DecodeError> {
        Ok(self.bytes(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, DecodeError> {
        let b = self.bytes(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        let b = self.bytes(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        let b = self.bytes(8, field)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn str(&mut self, field: &'static str, max: usize) -> Result<String, DecodeError> {
        let len = self.u16(field)? as usize;
        if len > max {
            return Err(DecodeError::TooLong { field, len, max });
        }
        let bytes = self.bytes(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { field })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes { extra: self.remaining() });
        }
        Ok(())
    }
}

fn get_operand(c: &mut Cur<'_>) -> Result<OperandDesc, DecodeError> {
    let flags = c.u8("operand flags")?;
    let dir = match flags & 0b11 {
        0 => Direction::In,
        1 => Direction::Out,
        2 => Direction::InOut,
        _ => return Err(DecodeError::BadEnum { field: "operand direction", got: flags }),
    };
    let kind = match (flags >> 2) & 0b1 {
        0 => OperandKind::Memory,
        _ => OperandKind::Scalar,
    };
    if flags >> 3 != 0 {
        return Err(DecodeError::BadEnum { field: "operand flags", got: flags });
    }
    if kind == OperandKind::Scalar && dir != Direction::In {
        // `TaskDesc::new` panics on this; refuse it structurally.
        return Err(DecodeError::ScalarNotInput);
    }
    let addr = c.u64("operand addr")?;
    let size = c.u32("operand size")?;
    Ok(OperandDesc { addr, size, dir, kind })
}

fn get_task(c: &mut Cur<'_>) -> Result<TaskDesc, DecodeError> {
    let kernel = KernelId(c.u16("task kernel")?);
    let runtime = c.u64("task runtime")?; // Cycle = u64 on the wire
    let nops = c.u8("operand count")? as usize;
    if nops > MAX_OPERANDS {
        return Err(DecodeError::TooManyOperands { count: nops });
    }
    let mut operands = Vec::with_capacity(nops);
    for _ in 0..nops {
        operands.push(get_operand(c)?);
    }
    // Both `TaskDesc::new` panic conditions were checked above, so this
    // cannot abort on hostile input.
    Ok(TaskDesc::new(kernel, runtime, operands))
}

/// Decodes one frame from `kind` + `body` (the bytes after the length
/// prefix). The entire body must be consumed.
pub fn decode_frame(kind: u8, body: &[u8]) -> Result<Frame, DecodeError> {
    let mut c = Cur::new(body);
    let frame = match kind {
        K_HELLO => {
            let magic = c.u32("hello magic")?;
            if magic != MAGIC {
                return Err(DecodeError::BadMagic { got: magic });
            }
            Frame::Hello { version: c.u16("hello version")? }
        }
        K_HELLO_ACK => Frame::HelloAck { version: c.u16("helloack version")? },
        K_OPEN => {
            let graph = c.u64("open graph id")?;
            let deadline_ms = c.u32("open deadline")?;
            let name = c.str("graph name", MAX_NAME)?;
            let nkernels = c.u16("kernel count")? as usize;
            if nkernels > MAX_KERNELS {
                return Err(DecodeError::TooLong {
                    field: "kernel table",
                    len: nkernels,
                    max: MAX_KERNELS,
                });
            }
            // Worst-case valid kernel entry is 2 bytes (empty name);
            // cap the preallocation by what the body can actually hold.
            let mut kernels = Vec::with_capacity(nkernels.min(c.remaining() / 2 + 1));
            for _ in 0..nkernels {
                kernels.push(c.str("kernel name", MAX_NAME)?);
            }
            Frame::OpenGraph { graph, deadline_ms, name, kernels }
        }
        K_TASKS => {
            let graph = c.u64("tasks graph id")?;
            let count = c.u32("task count")? as usize;
            // Minimum encoded task is 11 bytes; never allocate past
            // what the body can hold.
            let mut tasks = Vec::with_capacity(count.min(c.remaining() / 11 + 1));
            for _ in 0..count {
                tasks.push(get_task(&mut c)?);
            }
            Frame::Tasks { graph, tasks }
        }
        K_SEAL => {
            Frame::Seal { graph: c.u64("seal graph id")?, tasks_total: c.u64("seal task total")? }
        }
        K_SHUTDOWN => Frame::Shutdown,
        K_BYE => Frame::Bye,
        K_ACCEPTED => Frame::Accepted { graph: c.u64("accepted graph id")? },
        K_REJECT => {
            let graph = c.u64("reject graph id")?;
            let reason = match c.u8("reject reason")? {
                0 => RejectReason::Overloaded { retry_after_ms: c.u32("retry_after_ms")? },
                1 => RejectReason::QuotaExceeded {
                    inflight: c.u32("quota inflight")?,
                    quota: c.u32("quota limit")?,
                },
                2 => RejectReason::Malformed { detail: c.str("reject detail", MAX_NAME)? },
                3 => RejectReason::Draining,
                4 => RejectReason::TooLarge {
                    tasks: c.u64("toolarge tasks")?,
                    limit: c.u64("toolarge limit")?,
                },
                5 => RejectReason::UnknownGraph,
                6 => RejectReason::DuplicateGraph,
                got => return Err(DecodeError::BadEnum { field: "reject reason", got }),
            };
            Frame::Reject { graph, reason }
        }
        K_DONE => {
            let graph = c.u64("done graph id")?;
            let outcome = match c.u8("done outcome")? {
                0 => GraphOutcome::Completed {
                    tasks: c.u64("done tasks")?,
                    failed: c.u32("done failed")?,
                    poisoned: c.u32("done poisoned")?,
                    exec_wall_us: c.u64("done wall")?,
                },
                1 => GraphOutcome::Cancelled {
                    completed: c.u64("done completed")?,
                    tasks: c.u64("done tasks")?,
                },
                2 => GraphOutcome::DeadlineExpired {
                    completed: c.u64("done completed")?,
                    tasks: c.u64("done tasks")?,
                },
                3 => GraphOutcome::Failed { detail: c.str("done detail", MAX_NAME)? },
                got => return Err(DecodeError::BadEnum { field: "done outcome", got }),
            };
            Frame::Done { graph, outcome }
        }
        K_SESSION_ERROR => {
            let kind = match c.u8("session error kind")? {
                0 => SessionErrorKind::Decode,
                1 => SessionErrorKind::Protocol,
                2 => SessionErrorKind::Draining,
                got => return Err(DecodeError::BadEnum { field: "session error kind", got }),
            };
            Frame::SessionError { kind, detail: c.str("session error detail", MAX_NAME)? }
        }
        K_SHUTDOWN_ACK => Frame::ShutdownAck,
        kind => return Err(DecodeError::UnknownKind { kind }),
    };
    c.finish()?;
    Ok(frame)
}

/// Decodes one frame from a contiguous buffer holding `[len][kind][body]`.
/// Returns the frame and the bytes consumed. Used by tests/fuzzing; the
/// stream path is [`read_frame`].
pub fn decode_frame_bytes(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
    let mut c = Cur::new(buf);
    let len = c.u32("frame length")?;
    if len > MAX_FRAME {
        return Err(DecodeError::FrameTooLarge { len });
    }
    if len == 0 {
        return Err(DecodeError::EmptyFrame);
    }
    let body = c.bytes(len as usize, "frame body")?;
    let frame = decode_frame(body[0], &body[1..])?;
    Ok((frame, 4 + len as usize))
}

// ---------------------------------------------------------------------
// Stream transport
// ---------------------------------------------------------------------

/// Writes one frame. Callers must treat an `Err` as session-fatal (the
/// stream position is unknown) — and per the repo lint, must never
/// `.unwrap()` it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Reads one frame. Distinguishes a clean close on a frame boundary
/// ([`WireError::Closed`]) from death mid-frame (`Io` with
/// `UnexpectedEof` — the truncated-frame signal) and from junk bytes
/// ([`WireError::Decode`]). Blocking behavior (and thus slow-loris
/// tolerance) is governed by the socket's read timeout, set by the
/// caller; the decoder itself never buffers beyond one frame.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_buf = [0u8; 4];
    // First byte by hand so a close *between* frames is `Closed`, not
    // a spurious truncation error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(WireError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    len_buf[0] = first[0];
    r.read_exact(&mut len_buf[1..]).map_err(WireError::Io)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::Decode(DecodeError::FrameTooLarge { len }));
    }
    if len == 0 {
        return Err(WireError::Decode(DecodeError::EmptyFrame));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(WireError::Io)?;
    decode_frame(body[0], &body[1..]).map_err(WireError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode_frame(&f);
        let (back, used) = decode_frame_bytes(&bytes).expect("decode");
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::Hello { version: 1 });
        roundtrip(Frame::HelloAck { version: 1 });
        roundtrip(Frame::OpenGraph {
            graph: 7,
            deadline_ms: 250,
            name: "cholesky".into(),
            kernels: vec!["potrf".into(), "trsm".into()],
        });
        roundtrip(Frame::Tasks {
            graph: 7,
            tasks: vec![
                TaskDesc::new(KernelId(0), 123, vec![]),
                TaskDesc::new(
                    KernelId(1),
                    9_999,
                    vec![
                        OperandDesc::input(0x1000, 64),
                        OperandDesc::output(0x2000, 128),
                        OperandDesc::inout(0x3000, 8),
                        OperandDesc::scalar(4),
                    ],
                ),
            ],
        });
        roundtrip(Frame::Seal { graph: 7, tasks_total: 2 });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Bye);
        roundtrip(Frame::Accepted { graph: 7 });
        for reason in [
            RejectReason::Overloaded { retry_after_ms: 120 },
            RejectReason::QuotaExceeded { inflight: 8, quota: 8 },
            RejectReason::Malformed { detail: "kernel 9 out of range".into() },
            RejectReason::Draining,
            RejectReason::TooLarge { tasks: 1 << 24, limit: 1 << 20 },
            RejectReason::UnknownGraph,
            RejectReason::DuplicateGraph,
        ] {
            roundtrip(Frame::Reject { graph: 7, reason });
        }
        for outcome in [
            GraphOutcome::Completed { tasks: 100, failed: 1, poisoned: 3, exec_wall_us: 4242 },
            GraphOutcome::Cancelled { completed: 10, tasks: 100 },
            GraphOutcome::DeadlineExpired { completed: 99, tasks: 100 },
            GraphOutcome::Failed { detail: "worker thread panicked".into() },
        ] {
            roundtrip(Frame::Done { graph: 7, outcome });
        }
        roundtrip(Frame::SessionError {
            kind: SessionErrorKind::Decode,
            detail: "truncated at task kernel".into(),
        });
        roundtrip(Frame::ShutdownAck);
    }

    #[test]
    fn bad_magic_is_structured() {
        let mut bytes = encode_frame(&Frame::Hello { version: 1 });
        bytes[5] ^= 0xFF; // first magic byte
        match decode_frame_bytes(&bytes) {
            Err(DecodeError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let bytes = (MAX_FRAME + 1).to_le_bytes();
        match decode_frame_bytes(&bytes) {
            Err(DecodeError::FrameTooLarge { len }) => assert_eq!(len, MAX_FRAME + 1),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn huge_task_count_with_tiny_body_is_truncation_not_oom() {
        // A Tasks frame declaring u32::MAX tasks but carrying none:
        // the decoder must fail fast without allocating for the claim.
        let mut out = vec![0u8; 4];
        out.push(super::K_TASKS);
        out.extend_from_slice(&7u64.to_le_bytes());
        out.extend_from_slice(&u32::MAX.to_le_bytes());
        let len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&len.to_le_bytes());
        match decode_frame_bytes(&out) {
            Err(DecodeError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn twenty_operands_is_a_structured_error() {
        let mut out = vec![0u8; 4];
        out.push(super::K_TASKS);
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // kernel
        out.extend_from_slice(&1u64.to_le_bytes()); // runtime
        out.push(20); // operand count over MAX_OPERANDS
        for _ in 0..20 {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        let len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&len.to_le_bytes());
        match decode_frame_bytes(&out) {
            Err(DecodeError::TooManyOperands { count: 20 }) => {}
            other => panic!("expected TooManyOperands, got {other:?}"),
        }
    }

    #[test]
    fn scalar_output_is_a_structured_error() {
        let mut out = vec![0u8; 4];
        out.push(super::K_TASKS);
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&1u64.to_le_bytes());
        out.push(1);
        out.push(0b101); // scalar + Out: TaskDesc::new would panic
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&4u32.to_le_bytes());
        let len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&len.to_le_bytes());
        match decode_frame_bytes(&out) {
            Err(DecodeError::ScalarNotInput) => {}
            other => panic!("expected ScalarNotInput, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_frame(&Frame::Bye);
        bytes.push(0xAA);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        match decode_frame_bytes(&bytes) {
            Err(DecodeError::TrailingBytes { extra: 1 }) => {}
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
    }

    #[test]
    fn stream_close_between_frames_is_closed_not_truncated() {
        let empty: &[u8] = &[];
        match read_frame(&mut std::io::Cursor::new(empty)) {
            Err(WireError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        let half = &encode_frame(&Frame::Shutdown)[..3];
        match read_frame(&mut std::io::Cursor::new(half)) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected mid-frame Io error, got {other:?}"),
        }
    }
}
