//! Graph assembly: turning a validated `OpenGraph` → `Tasks`* → `Seal`
//! frame sequence back into a [`TaskTrace`], and the inverse chunking
//! helper clients use (DESIGN.md §14.1).
//!
//! The assembler owns the semantic checks the codec cannot do alone
//! (kernel ids against the declared table, cumulative task ceilings,
//! declared-vs-streamed count agreement), so by the time a trace
//! reaches the executor every invariant `tss-exec` assumes holds by
//! construction. All failures are structured [`AssembleError`]s that a
//! server maps onto [`RejectReason::Malformed`] /
//! [`RejectReason::TooLarge`] — never panics.

use crate::wire::{Frame, RejectReason};
use tss_trace::{TaskDesc, TaskTrace};

/// Server-side resource caps applied during assembly.
#[derive(Debug, Clone, Copy)]
pub struct AssemblerLimits {
    /// Per-graph task ceiling.
    pub max_tasks: u64,
}

impl Default for AssemblerLimits {
    fn default() -> Self {
        // 1M tasks ≈ tens of MB of operand descriptors: far above any
        // benchmark trace, low enough that one hostile graph cannot
        // take the host down.
        AssemblerLimits { max_tasks: 1 << 20 }
    }
}

/// Why a graph failed assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A task referenced a kernel index past the declared table.
    KernelOutOfRange {
        /// Index of the offending task within the graph.
        task: u64,
        /// The out-of-range kernel id.
        kernel: u16,
        /// Declared kernel-table size.
        kernels: usize,
    },
    /// The graph grew past [`AssemblerLimits::max_tasks`].
    TooManyTasks {
        /// Tasks accumulated (including the offending batch).
        tasks: u64,
        /// The ceiling.
        limit: u64,
    },
    /// `Seal` declared a total that disagrees with what was streamed.
    CountMismatch {
        /// Declared total.
        declared: u64,
        /// Tasks actually streamed.
        streamed: u64,
    },
    /// `Seal` on a graph with zero tasks.
    EmptyGraph,
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::KernelOutOfRange { task, kernel, kernels } => {
                write!(f, "task {task} references kernel {kernel}, table has {kernels}")
            }
            AssembleError::TooManyTasks { tasks, limit } => {
                write!(f, "graph reached {tasks} tasks, limit {limit}")
            }
            AssembleError::CountMismatch { declared, streamed } => {
                write!(f, "seal declared {declared} tasks, {streamed} were streamed")
            }
            AssembleError::EmptyGraph => write!(f, "sealed graph has no tasks"),
        }
    }
}

impl std::error::Error for AssembleError {}

impl AssembleError {
    /// The reject a server answers this failure with.
    pub fn reject_reason(&self, limits: AssemblerLimits) -> RejectReason {
        match self {
            AssembleError::TooManyTasks { tasks, .. } => {
                RejectReason::TooLarge { tasks: *tasks, limit: limits.max_tasks }
            }
            other => RejectReason::Malformed { detail: other.to_string() },
        }
    }
}

/// Accumulates one open graph's streamed frames into a [`TaskTrace`].
#[derive(Debug)]
pub struct GraphAssembler {
    trace: TaskTrace,
    kernels: usize,
    tasks: u64,
    limits: AssemblerLimits,
    deadline_ms: u32,
}

impl GraphAssembler {
    /// Starts assembly from a validated `OpenGraph` frame's fields.
    pub fn open(name: &str, kernels: &[String], deadline_ms: u32, limits: AssemblerLimits) -> Self {
        let mut trace = TaskTrace::new(name);
        for k in kernels {
            trace.add_kernel(k.clone());
        }
        GraphAssembler { trace, kernels: kernels.len(), tasks: 0, limits, deadline_ms }
    }

    /// The graph's propagated completion deadline (0 = none).
    pub fn deadline_ms(&self) -> u32 {
        self.deadline_ms
    }

    /// Tasks streamed so far.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Appends one `Tasks` batch.
    pub fn push_tasks(&mut self, tasks: Vec<TaskDesc>) -> Result<(), AssembleError> {
        let grown = self.tasks + tasks.len() as u64;
        if grown > self.limits.max_tasks {
            return Err(AssembleError::TooManyTasks { tasks: grown, limit: self.limits.max_tasks });
        }
        for t in tasks {
            if t.kernel.0 as usize >= self.kernels {
                return Err(AssembleError::KernelOutOfRange {
                    task: self.tasks,
                    kernel: t.kernel.0,
                    kernels: self.kernels,
                });
            }
            self.trace.push(t);
            self.tasks += 1;
        }
        Ok(())
    }

    /// Seals the graph: checks the declared total and yields the trace.
    pub fn seal(self, declared_total: u64) -> Result<TaskTrace, AssembleError> {
        if declared_total != self.tasks {
            return Err(AssembleError::CountMismatch {
                declared: declared_total,
                streamed: self.tasks,
            });
        }
        if self.tasks == 0 {
            return Err(AssembleError::EmptyGraph);
        }
        Ok(self.trace)
    }
}

/// Client-side inverse: chunks `trace` into the frame sequence that
/// reassembles it (`OpenGraph`, `Tasks` batches of `chunk`, `Seal`).
pub fn graph_frames(graph: u64, deadline_ms: u32, trace: &TaskTrace, chunk: usize) -> Vec<Frame> {
    let chunk = chunk.max(1);
    let kernels: Vec<String> = (0..trace.kernel_count())
        .map(|k| trace.kernel_name(tss_trace::KernelId(k as u16)).to_string())
        .collect();
    let mut frames =
        vec![Frame::OpenGraph { graph, deadline_ms, name: trace.name().to_string(), kernels }];
    for batch in trace.tasks().chunks(chunk) {
        frames.push(Frame::Tasks { graph, tasks: batch.to_vec() });
    }
    frames.push(Frame::Seal { graph, tasks_total: trace.len() as u64 });
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::KernelId;

    fn assemble(frames: &[Frame]) -> Result<TaskTrace, AssembleError> {
        let mut asm = None;
        for f in frames {
            match f {
                Frame::OpenGraph { deadline_ms, name, kernels, .. } => {
                    asm = Some(GraphAssembler::open(
                        name,
                        kernels,
                        *deadline_ms,
                        AssemblerLimits::default(),
                    ));
                }
                Frame::Tasks { tasks, .. } => {
                    asm.as_mut().expect("open first").push_tasks(tasks.clone())?
                }
                Frame::Seal { tasks_total, .. } => {
                    return asm.take().expect("open first").seal(*tasks_total)
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        panic!("no seal frame")
    }

    fn sample_trace() -> TaskTrace {
        let mut tr = TaskTrace::new("sample");
        let k = tr.add_kernel("k0");
        let j = tr.add_kernel("k1");
        for i in 0..10u64 {
            tr.push_task(k, 100 + i, vec![tss_trace::OperandDesc::output(i * 64, 64)]);
            tr.push_task(j, 200, vec![tss_trace::OperandDesc::input(i * 64, 64)]);
        }
        tr
    }

    #[test]
    fn chunked_frames_reassemble_the_trace() {
        let tr = sample_trace();
        for chunk in [1, 3, 7, 1000] {
            let frames = graph_frames(42, 0, &tr, chunk);
            let back = assemble(&frames).expect("assembles");
            assert_eq!(back.name(), tr.name());
            assert_eq!(back.kernel_count(), tr.kernel_count());
            assert_eq!(back.tasks(), tr.tasks());
        }
    }

    #[test]
    fn kernel_out_of_range_is_structured() {
        let mut asm = GraphAssembler::open("g", &["k".into()], 0, AssemblerLimits::default());
        let err =
            asm.push_tasks(vec![TaskDesc::new(KernelId(5), 1, vec![])]).expect_err("must reject");
        assert_eq!(err, AssembleError::KernelOutOfRange { task: 0, kernel: 5, kernels: 1 });
    }

    #[test]
    fn count_mismatch_and_empty_graph_are_structured() {
        let asm = GraphAssembler::open("g", &["k".into()], 0, AssemblerLimits::default());
        let err = asm.seal(3).map(|_| ()).expect_err("mismatch must reject");
        assert_eq!(err, AssembleError::CountMismatch { declared: 3, streamed: 0 });
        let asm = GraphAssembler::open("g", &["k".into()], 0, AssemblerLimits::default());
        let err = asm.seal(0).map(|_| ()).expect_err("empty must reject");
        assert_eq!(err, AssembleError::EmptyGraph);
    }

    #[test]
    fn task_ceiling_is_enforced_cumulatively() {
        let limits = AssemblerLimits { max_tasks: 5 };
        let mut asm = GraphAssembler::open("g", &["k".into()], 0, limits);
        let batch: Vec<TaskDesc> = (0..3).map(|_| TaskDesc::new(KernelId(0), 1, vec![])).collect();
        asm.push_tasks(batch.clone()).expect("first batch fits");
        let err = asm.push_tasks(batch).expect_err("second batch must trip the ceiling");
        assert_eq!(err, AssembleError::TooManyTasks { tasks: 6, limit: 5 });
        assert!(matches!(err.reject_reason(limits), RejectReason::TooLarge { .. }));
    }
}
