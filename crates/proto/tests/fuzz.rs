//! Codec fuzz (ISSUE 10 satellite): encode∘decode round-trips on all
//! nine workloads, and arbitrary truncation/corruption of valid frames
//! always yields a structured [`DecodeError`] — never a panic, never
//! an unbounded allocation.
//!
//! The corruption properties deliberately do *not* assert `Err`: one
//! flipped byte can produce a different but valid frame (e.g. a
//! changed graph id), which is fine — the contract under attack is
//! "no panic, no hang", and the decoder's ability to say *what* broke
//! when it does break.

use proptest::prelude::*;
use tss_proto::{
    decode_frame_bytes, encode_frame, graph_frames, AssemblerLimits, Frame, GraphAssembler,
};
use tss_workloads::{Benchmark, Scale};

/// Round-trips every frame of a full graph submission for one
/// workload trace and reassembles it into an identical trace.
fn roundtrip_workload(b: Benchmark) {
    let trace = b.trace(Scale::Small, 42);
    let frames = graph_frames(7, 100, &trace, 509);
    let mut asm: Option<GraphAssembler> = None;
    let mut sealed = None;
    for f in &frames {
        let bytes = encode_frame(f);
        let (back, used) = decode_frame_bytes(&bytes).expect("valid frame decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(&back, f, "{}: frame changed across the wire", b.name());
        match back {
            Frame::OpenGraph { deadline_ms, name, kernels, .. } => {
                asm = Some(GraphAssembler::open(
                    &name,
                    &kernels,
                    deadline_ms,
                    AssemblerLimits::default(),
                ));
            }
            Frame::Tasks { tasks, .. } => {
                asm.as_mut().expect("open before tasks").push_tasks(tasks).expect("valid batch");
            }
            Frame::Seal { tasks_total, .. } => {
                sealed =
                    Some(asm.take().expect("open before seal").seal(tasks_total).expect("seals"));
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let back = sealed.expect("graph sealed");
    assert_eq!(back.name(), trace.name(), "{}", b.name());
    assert_eq!(back.kernel_count(), trace.kernel_count(), "{}", b.name());
    assert_eq!(back.tasks(), trace.tasks(), "{}", b.name());
}

#[test]
fn all_nine_workloads_round_trip() {
    for b in Benchmark::all() {
        roundtrip_workload(b);
    }
}

/// A corpus of valid encoded frames to mutate, including a real
/// workload's task batches (the deepest decoder path).
fn corpus() -> Vec<Vec<u8>> {
    let trace = Benchmark::Cholesky.trace(Scale::Small, 42);
    let mut frames = graph_frames(3, 50, &trace, 257);
    frames.extend([
        Frame::Hello { version: 1 },
        Frame::HelloAck { version: 1 },
        Frame::Accepted { graph: 3 },
        Frame::Reject {
            graph: 3,
            reason: tss_proto::RejectReason::Overloaded { retry_after_ms: 80 },
        },
        Frame::Done {
            graph: 3,
            outcome: tss_proto::GraphOutcome::Completed {
                tasks: 10,
                failed: 0,
                poisoned: 0,
                exec_wall_us: 99,
            },
        },
        Frame::SessionError {
            kind: tss_proto::SessionErrorKind::Protocol,
            detail: "frame before hello".into(),
        },
        Frame::Shutdown,
        Frame::ShutdownAck,
        Frame::Bye,
    ]);
    frames.iter().map(encode_frame).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncation_never_panics(pick in 0usize..1_000_000, cut in 0usize..1_000_000) {
        let corpus = corpus();
        let bytes = &corpus[pick % corpus.len()];
        let cut = cut % bytes.len();
        // Structured error or a shorter valid frame — never a panic.
        let _ = decode_frame_bytes(&bytes[..cut]);
        // Truncating the *body* while keeping the length prefix intact
        // must be a structured error (the stream path sees this as an
        // UnexpectedEof mid-frame; the buffer path as Truncated).
        if cut > 4 {
            let mut clipped = bytes[..cut].to_vec();
            let body_len = (cut - 4) as u32;
            clipped[..4].copy_from_slice(&body_len.to_le_bytes());
            if cut < bytes.len() {
                prop_assert!(decode_frame_bytes(&clipped).is_err());
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(
        pick in 0usize..1_000_000,
        at in 0usize..1_000_000,
        x in 1u8..=255,
    ) {
        let corpus = corpus();
        let mut bytes = corpus[pick % corpus.len()].clone();
        let at = at % bytes.len();
        bytes[at] ^= x;
        // Corrupting the length prefix may claim a huge frame: the
        // decoder must refuse it structurally, not allocate for it.
        let _ = decode_frame_bytes(&bytes);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = decode_frame_bytes(&bytes);
    }
}
