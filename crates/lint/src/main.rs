//! `tss-lint` — the static side of the tss-verify layer (DESIGN.md §10).
//!
//! The model checker (`vendor/shuttle`) explores what the code *does*
//! under weak memory; this binary pins down what the code *says*:
//!
//! 1. **SAFETY discipline** — every `unsafe` token must be preceded by
//!    a `// SAFETY:` comment (same line, or the comment/attribute block
//!    directly above; chained `unsafe impl` lines may share one).
//! 2. **Relaxed allowlist** — every `Ordering::Relaxed` in first-party
//!    code must appear in `ci/relaxed_allowlist.txt` with a rationale;
//!    stale entries (pointing at lines that no longer say `Relaxed`)
//!    are errors too, so the list cannot rot. `--print-relaxed`
//!    regenerates it after line numbers shift.
//! 3. **Facade rule** — inside the execution core (`crates/exec/src/*`
//!    except the facade itself, plus `crates/core/src/fabric.rs`),
//!    atomics/Mutex/Condvar must come from `crate::sync` /
//!    `tss_exec::sync`, never `std::sync` directly — otherwise the
//!    model checker silently loses sight of them (DESIGN.md §10.1).
//! 4. **Citation integrity** — every `DESIGN.md §N[.M]` reference in a
//!    source comment must resolve to a real heading in DESIGN.md.
//! 5. **Crate hygiene** — every crate root carries
//!    `#![forbid(unsafe_code)]`, or (for the one crate with an audited
//!    unsafe surface) `#![deny(unsafe_op_in_unsafe_fn)]`.
//! 6. **Join discipline** — production code must not `.unwrap()` /
//!    `.expect(` a `JoinHandle` result (`.join().unwrap()` et al.): a
//!    panicking worker must surface as a structured failure
//!    (`TaskFailure` / `ExecError::WorkerPanic`, DESIGN.md §11), never
//!    re-panic in the joiner. Test code (`/tests/`, `/benches/`, and
//!    `#[cfg(test)]`-gated regions) is exempt — there a panic *is* the
//!    failure report.
//! 7. **Timing facade** — production code in `crates/exec/src/` must
//!    not call `std::time::Instant::now()` directly: all wall-clock
//!    reads go through `tss_obs::clock::Stamp` (DESIGN.md §12.1), so
//!    the observability layer sees every timestamp source and the
//!    noop/ring builds cannot drift in timing semantics. Test regions
//!    are exempt, as in check 6.
//! 8. **SchedPolicy facade** — any file implementing `SchedPolicy`
//!    (wherever it lives) must take its sync primitives from the
//!    facade, not `std::sync`, or the model tests of DESIGN.md §13.5
//!    silently stop covering it (`Arc` alone is permitted).
//! 9. **Socket discipline** — production code in the service crates
//!    (`crates/proto`, `crates/server`, `crates/client`) must not
//!    `.unwrap()` / `.expect(` a socket I/O result (read/write/flush/
//!    accept/connect/shutdown and the setsockopt-style setters): a
//!    peer can sever the connection at any byte, so I/O failure must
//!    become a structured session error (DESIGN.md §14.2), never a
//!    server-side panic. Test regions are exempt, as in check 6.
//!
//! All checks run on a comment/string-stripped view of the source where
//! that matters (so `"unsafe"` in a string or `Relaxed` in a doc
//! comment never trips a check), while SAFETY/citation scanning reads
//! the raw text (that is where the comments live). Exit status is
//! nonzero iff any violation is found — CI's `verify` job gates on it.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint finding, pointing at `file:line` (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Violation {
    file: String,
    line: usize,
    msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.msg)
    }
}

// ---------------------------------------------------------------------
// Source stripping
// ---------------------------------------------------------------------

/// Replaces the *contents* of comments, string literals, and char
/// literals with spaces, preserving every newline so line numbers in
/// the stripped text match the raw text. Handles nested block
/// comments, escapes, raw strings (`r"..."`, `r#"..."#`, `br"..."`),
/// byte strings, and tells lifetimes (`'a`) apart from char literals.
fn strip_code(src: &str) -> String {
    strip_code_opts(src, false)
}

/// Like [`strip_code`], but keeps comment text (the citation check
/// reads comments while still ignoring string literals, so a bogus
/// section token inside a test-fixture string is not a citation).
fn strip_strings(src: &str) -> String {
    strip_code_opts(src, true)
}

fn strip_code_opts(src: &str, keep_comments: bool) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // Pushes a char as-is if it's a newline, else a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                if keep_comments {
                    out.push(b[i]);
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            continue;
        }
        // Block comment (nesting).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    if keep_comments {
                        out.push('/');
                        out.push('*');
                    } else {
                        out.push(' ');
                        out.push(' ');
                    }
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    if keep_comments {
                        out.push('*');
                        out.push('/');
                    } else {
                        out.push(' ');
                        out.push(' ');
                    }
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if keep_comments {
                        out.push(b[i]);
                    } else {
                        blank(&mut out, b[i]);
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string starts, unless `r`/`b` is part of an identifier.
        let prev_ident = i > 0 && ident(b[i - 1]);
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            let mut k = j + 1;
            let mut hashes = 0;
            while b[j] == 'r' && k < n && b[k] == '#' {
                hashes += 1;
                k += 1;
            }
            if k < n && b[k] == '"' {
                // Emit the prefix + opening quote literally.
                for &p in &b[i..=k] {
                    out.push(p);
                }
                i = k + 1;
                // Raw strings have no escapes; plain `b"` does.
                let raw = b[j] == 'r';
                while i < n {
                    if b[i] == '"' {
                        if raw {
                            let close = (1..=hashes).all(|h| i + h < n && b[i + h] == '#');
                            if close {
                                out.push('"');
                                for _ in 0..hashes {
                                    out.push('#');
                                }
                                i += 1 + hashes;
                                break;
                            }
                            blank(&mut out, b[i]);
                            i += 1;
                        } else {
                            out.push('"');
                            i += 1;
                            break;
                        }
                    } else if !raw && b[i] == '\\' && i + 1 < n {
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                    } else {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let escaped = i + 1 < n && b[i + 1] == '\\';
            let closed = i + 2 < n && b[i + 2] == '\'';
            if escaped {
                out.push('\'');
                i += 1;
                while i < n && b[i] != '\'' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                if i < n {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if closed {
                out.push('\'');
                blank(&mut out, b[i + 1]);
                out.push('\'');
                i += 3;
                continue;
            }
            // Lifetime — leave as-is.
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Whether `line` contains `word` bounded by non-identifier chars.
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

// ---------------------------------------------------------------------
// Check 1: SAFETY comments on unsafe
// ---------------------------------------------------------------------

/// Every line whose *stripped* text contains the `unsafe` keyword must
/// carry a `SAFETY:` justification: on the same raw line, or in the
/// comment/attribute block directly above (walking over chained
/// `unsafe impl` lines so a pair of Send/Sync impls can share one).
fn check_unsafe_documented(file: &str, raw: &[&str], stripped: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, s) in stripped.iter().enumerate() {
        if !has_word(s, "unsafe") {
            continue;
        }
        if raw[i].contains("SAFETY:") {
            continue;
        }
        let mut ok = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = raw[j].trim_start();
            let comment =
                t.starts_with("//") || t.starts_with("/*") || t.starts_with('*') || t == "*/";
            if comment {
                if t.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                continue;
            }
            if t.starts_with("#[") || t.starts_with("#![") {
                continue;
            }
            if has_word(stripped[j], "unsafe") {
                // A chained unsafe line (e.g. paired Send/Sync impls);
                // keep walking to the shared comment above it.
                continue;
            }
            break;
        }
        if !ok {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                msg: "`unsafe` without a preceding `// SAFETY:` comment".into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Check 2: Ordering::Relaxed allowlist
// ---------------------------------------------------------------------

/// A parsed `ci/relaxed_allowlist.txt` entry: `path:line  rationale`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AllowEntry {
    file: String,
    line: usize,
    rationale: String,
    /// Line *within the allowlist file* (for error reporting).
    at: usize,
}

/// Parses the allowlist; `#`-lines and blank lines are comments.
/// Malformed entries come back as violations against the list itself.
fn parse_allowlist(list_path: &str, text: &str) -> (Vec<AllowEntry>, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.splitn(2, char::is_whitespace);
        let locator = parts.next().unwrap_or("");
        let rationale = parts.next().unwrap_or("").trim();
        let parsed = locator
            .rsplit_once(':')
            .and_then(|(f, l)| l.parse::<usize>().ok().map(|l| (f.to_string(), l)));
        match parsed {
            Some((file, line)) if !rationale.is_empty() => {
                entries.push(AllowEntry {
                    file,
                    line,
                    rationale: rationale.to_string(),
                    at: idx + 1,
                });
            }
            Some(_) => bad.push(Violation {
                file: list_path.to_string(),
                line: idx + 1,
                msg: "allowlist entry has no rationale".into(),
            }),
            None => bad.push(Violation {
                file: list_path.to_string(),
                line: idx + 1,
                msg: "malformed allowlist entry (expected `path:line  rationale`)".into(),
            }),
        }
    }
    (entries, bad)
}

/// An `Ordering::Relaxed` occurrence in stripped source.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RelaxedSite {
    file: String,
    line: usize,
}

fn find_relaxed(file: &str, stripped: &[&str]) -> Vec<RelaxedSite> {
    stripped
        .iter()
        .enumerate()
        .filter(|(_, s)| s.contains("Ordering::Relaxed"))
        .map(|(i, _)| RelaxedSite { file: file.to_string(), line: i + 1 })
        .collect()
}

/// Cross-checks sites against the allowlist both ways: unallowlisted
/// sites are violations at the source, stale entries are violations at
/// the list.
fn check_relaxed(list_path: &str, sites: &[RelaxedSite], entries: &[AllowEntry]) -> Vec<Violation> {
    let mut out = Vec::new();
    let allowed: BTreeSet<(&str, usize)> =
        entries.iter().map(|e| (e.file.as_str(), e.line)).collect();
    let actual: BTreeSet<(&str, usize)> = sites.iter().map(|s| (s.file.as_str(), s.line)).collect();
    for s in sites {
        if !allowed.contains(&(s.file.as_str(), s.line)) {
            out.push(Violation {
                file: s.file.clone(),
                line: s.line,
                msg: "`Ordering::Relaxed` not in ci/relaxed_allowlist.txt \
                      (add it with a rationale, or strengthen the ordering; \
                      `tss-lint --print-relaxed` regenerates the list)"
                    .into(),
            });
        }
    }
    for e in entries {
        if !actual.contains(&(e.file.as_str(), e.line)) {
            out.push(Violation {
                file: list_path.to_string(),
                line: e.at,
                msg: format!(
                    "stale allowlist entry: {}:{} has no `Ordering::Relaxed`",
                    e.file, e.line
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Check 3: sync facade
// ---------------------------------------------------------------------

/// Whether `file` (repo-relative, `/`-separated) is inside the facade
/// boundary: all of `crates/exec/src/` except the facade itself, plus
/// the fabric (which shares the model-checked claim protocol).
fn facade_scoped(file: &str) -> bool {
    (file.starts_with("crates/exec/src/") && file != "crates/exec/src/sync.rs")
        || file == "crates/core/src/fabric.rs"
}

fn check_facade(file: &str, stripped: &[&str]) -> Vec<Violation> {
    if !facade_scoped(file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, s) in stripped.iter().enumerate() {
        let direct = s.contains("std::sync::atomic")
            || s.contains("std::sync::Mutex")
            || s.contains("std::sync::Condvar");
        let grouped = s.contains("std::sync::{")
            && (s.contains("Mutex") || s.contains("Condvar") || s.contains("atomic"));
        if direct || grouped {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                msg: "atomics/locks must be imported via the sync facade \
                      (`crate::sync` / `tss_exec::sync`), not `std::sync` — \
                      the model checker cannot see std primitives (DESIGN.md §10.1)"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Check 4: DESIGN.md § citations
// ---------------------------------------------------------------------

/// Extracts every `§N[.M[...]]` token from `text`, not consuming a
/// trailing `.` that ends a sentence (`…DESIGN.md §4.` cites §4).
fn section_tokens(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (li, line) in text.lines().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] != '§' {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            let mut tok = String::new();
            while j < chars.len() && chars[j].is_ascii_digit() {
                tok.push(chars[j]);
                j += 1;
            }
            // Dotted components, only when a digit follows the dot.
            while j + 1 < chars.len() && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                tok.push('.');
                j += 1;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    tok.push(chars[j]);
                    j += 1;
                }
            }
            if !tok.is_empty() {
                out.push((li + 1, tok));
            }
            i = j.max(i + 1);
        }
    }
    out
}

/// Headings defined in DESIGN.md: every `§` token on a markdown
/// heading line (`#`…).
fn design_headings(design: &str) -> BTreeSet<String> {
    design
        .lines()
        .filter(|l| l.starts_with('#'))
        .flat_map(|l| section_tokens(l).into_iter().map(|(_, t)| t))
        .collect()
}

fn check_citations(file: &str, raw_text: &str, headings: &BTreeSet<String>) -> Vec<Violation> {
    section_tokens(raw_text)
        .into_iter()
        .filter(|(_, tok)| !headings.contains(tok))
        .map(|(line, tok)| Violation {
            file: file.to_string(),
            line,
            msg: format!("citation §{tok} does not match any DESIGN.md heading"),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Check 5: crate hygiene
// ---------------------------------------------------------------------

fn check_hygiene(file: &str, raw_text: &str) -> Vec<Violation> {
    let ok = raw_text.contains("#![forbid(unsafe_code)]")
        || raw_text.contains("#![deny(unsafe_op_in_unsafe_fn)]");
    if ok {
        Vec::new()
    } else {
        vec![Violation {
            file: file.to_string(),
            line: 1,
            msg: "crate root lacks `#![forbid(unsafe_code)]` (or, for an audited \
                  unsafe surface, `#![deny(unsafe_op_in_unsafe_fn)]`)"
                .into(),
        }]
    }
}

// ---------------------------------------------------------------------
// Check 6: JoinHandle results must not be unwrapped in production code
// ---------------------------------------------------------------------

/// Marks the lines covered by a `#[cfg(...test...)]` attribute: the
/// attribute itself, any stacked attributes/comments, and the gated
/// item's whole brace block (tracked by depth). A brace-less gated item
/// (e.g. `#[cfg(test)] use ...;`) ends at its semicolon.
fn test_region_mask(stripped: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; stripped.len()];
    let mut i = 0;
    while i < stripped.len() {
        let t = stripped[i].trim_start();
        if t.starts_with("#[cfg(") && has_word(t, "test") {
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            while j < stripped.len() {
                mask[j] = true;
                let mut ended = false;
                for c in stripped[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                ended = true;
                            }
                        }
                        ';' if !opened && depth == 0 => ended = true,
                        _ => {}
                    }
                }
                if ended {
                    break;
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether `file` (repo-relative) is test-only by location.
fn test_scoped_path(file: &str) -> bool {
    file.split('/').any(|seg| seg == "tests" || seg == "benches")
}

/// Flags `.join().unwrap()` / `.join().expect(` outside test regions.
/// Line-based on stripped source: the ban is on the *idiom* of joining
/// and re-panicking in one breath — a split chain that stashes the
/// `Result` first is exactly the structured handling we want.
fn check_join_discipline(file: &str, stripped: &[&str]) -> Vec<Violation> {
    if test_scoped_path(file) {
        return Vec::new();
    }
    let mask = test_region_mask(stripped);
    let mut out = Vec::new();
    for (i, s) in stripped.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if s.contains(".join().unwrap()") || s.contains(".join().expect(") {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                msg: "JoinHandle result unwrapped in production code — a dead worker \
                      must become a structured failure (TaskFailure / \
                      ExecError::WorkerPanic, DESIGN.md §11), not a joiner panic"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Check 7: wall-clock reads go through the timing facade
// ---------------------------------------------------------------------

/// Flags `Instant::now` in execution-core production code. The obs
/// sink selection (DESIGN.md §12.1) hinges on every executor timestamp
/// flowing through `tss_obs::clock::Stamp`; a stray raw read would
/// give the noop and ring builds different timing sources. Matches the
/// bare token, so `std::time::Instant::now()` and an imported
/// `Instant::now()` are both caught.
fn check_instant_discipline(file: &str, stripped: &[&str]) -> Vec<Violation> {
    if !file.starts_with("crates/exec/src/") || test_scoped_path(file) {
        return Vec::new();
    }
    let mask = test_region_mask(stripped);
    let mut out = Vec::new();
    for (i, s) in stripped.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if s.contains("Instant::now") {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                msg: "raw `Instant::now()` in the execution core — route the read \
                      through `tss_obs::clock::Stamp` (DESIGN.md §12.1) so both \
                      sink builds share one timing facade"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Check 8: SchedPolicy impls stay inside the sync facade
// ---------------------------------------------------------------------

/// Flags any `std::sync` reference in a file that implements
/// [`SchedPolicy`]. Stricter than the facade check (which only bans
/// the modeled primitives inside `crates/exec/src/`): policy hooks run
/// on the worker hot path *and* under the shuttle scheduler, so a
/// policy defined anywhere — a bench experiment, a test crate — must
/// take every primitive (including `Arc`) from the facade, or the
/// model tests of DESIGN.md §13.5 silently stop covering it.
fn check_sched_policy_facade(file: &str, stripped: &[&str]) -> Vec<Violation> {
    // Path-qualified impls (`impl sched::SchedPolicy for ...`) count.
    let implements = stripped.iter().any(|s| s.contains("impl ") && s.contains("SchedPolicy for "));
    if !implements {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, s) in stripped.iter().enumerate() {
        // `std::sync::Arc` alone is permitted: it is plain refcounting,
        // shuttle ships no double for it, and the model tests need it to
        // share policies across shuttle threads. A grouped import that
        // smuggles anything else alongside Arc is still flagged.
        let arc_only = s.contains("std::sync::Arc") && !s.contains('{');
        if s.contains("std::sync") && !arc_only {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                msg: "`std::sync` in a file implementing SchedPolicy — policy hooks \
                      run under the model checker, so every sync primitive must come \
                      from the facade (`crate::sync` / `tss_exec::sync`, DESIGN.md §13)"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Check 9: socket I/O results become structured errors, not panics
// ---------------------------------------------------------------------

/// Socket-facing call tokens whose `Result` must never be unwrapped in
/// the service crates. Matches the std I/O surface plus this repo's
/// framed-wire wrappers; a lock `.expect("poisoned")` on the same line
/// as none of these is untouched.
const SOCKET_CALLS: [&str; 12] = [
    ".read(",
    ".read_exact(",
    ".read_to_end(",
    ".write(",
    ".write_all(",
    ".flush(",
    ".accept(",
    ".shutdown(",
    ".set_read_timeout(",
    "TcpStream::connect",
    "read_frame(",
    "write_frame(",
];

/// Whether `file` (repo-relative) is service-crate production source.
fn socket_scoped_path(file: &str) -> bool {
    file.starts_with("crates/proto/src/")
        || file.starts_with("crates/server/src/")
        || file.starts_with("crates/client/src/")
}

/// Flags `.unwrap()` / `.expect(` on a line that performs socket I/O
/// in `crates/proto`, `crates/server`, or `crates/client`. A peer can
/// sever the connection at any byte, so an I/O failure there is an
/// expected event: it must become a structured session error
/// (DESIGN.md §14.2) that isolates the one session, never a panic that
/// can take a server thread — and the graphs it owes replies for —
/// down with it. Test regions are exempt, as in check 6.
fn check_socket_unwrap(file: &str, stripped: &[&str]) -> Vec<Violation> {
    if !socket_scoped_path(file) || test_scoped_path(file) {
        return Vec::new();
    }
    let mask = test_region_mask(stripped);
    let mut out = Vec::new();
    for (i, s) in stripped.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let unwraps = s.contains(".unwrap()") || s.contains(".expect(");
        if unwraps && SOCKET_CALLS.iter().any(|tok| s.contains(tok)) {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                msg: "socket I/O result unwrapped in a service crate — a severed \
                      peer is an expected event, so it must become a structured \
                      session error (DESIGN.md §14.2), not a server panic"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk_rs(&p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
}

const ALLOWLIST: &str = "ci/relaxed_allowlist.txt";

struct LoadedFile {
    rel: String,
    raw: String,
    stripped: String,
}

fn load_files(root: &Path, dirs: &[&str]) -> Vec<LoadedFile> {
    let mut paths = Vec::new();
    for d in dirs {
        walk_rs(&root.join(d), &mut paths);
    }
    paths
        .into_iter()
        .filter_map(|p| {
            let raw = fs::read_to_string(&p).ok()?;
            let stripped = strip_code(&raw);
            Some(LoadedFile { rel: rel(root, &p), raw, stripped })
        })
        .collect()
}

fn run(root: &Path, print_relaxed: bool) -> ExitCode {
    // First-party production + test code: checks 1–4.
    let core = load_files(root, &["src", "crates"]);
    // The vendored model checker is ours too: checks 1 and 4 (its own
    // mirror-store Relaxed uses are instrumentation, not protocol, so
    // the allowlist doesn't cover it).
    let aux = load_files(root, &["vendor/shuttle/src"]);

    let mut sites = Vec::new();
    for f in &core {
        let stripped: Vec<&str> = f.stripped.lines().collect();
        sites.extend(find_relaxed(&f.rel, &stripped));
    }

    if print_relaxed {
        // Regenerate the allowlist body, keeping rationales for entries
        // whose file:line still matches.
        let existing = fs::read_to_string(root.join(ALLOWLIST)).unwrap_or_default();
        let (entries, _) = parse_allowlist(ALLOWLIST, &existing);
        for s in &sites {
            let rationale = entries
                .iter()
                .find(|e| e.file == s.file && e.line == s.line)
                .map(|e| e.rationale.as_str())
                .unwrap_or("FIXME: justify this Relaxed or strengthen it");
            println!("{}:{}  {}", s.file, s.line, rationale);
        }
        return ExitCode::SUCCESS;
    }

    let mut violations = Vec::new();

    for f in core.iter().chain(aux.iter()) {
        let raw: Vec<&str> = f.raw.lines().collect();
        let stripped: Vec<&str> = f.stripped.lines().collect();
        violations.extend(check_unsafe_documented(&f.rel, &raw, &stripped));
    }

    match fs::read_to_string(root.join(ALLOWLIST)) {
        Ok(text) => {
            let (entries, bad) = parse_allowlist(ALLOWLIST, &text);
            violations.extend(bad);
            violations.extend(check_relaxed(ALLOWLIST, &sites, &entries));
        }
        Err(_) => violations.push(Violation {
            file: ALLOWLIST.to_string(),
            line: 1,
            msg: "missing (run `tss-lint --print-relaxed` to generate it)".into(),
        }),
    }

    for f in &core {
        let stripped: Vec<&str> = f.stripped.lines().collect();
        violations.extend(check_facade(&f.rel, &stripped));
        violations.extend(check_sched_policy_facade(&f.rel, &stripped));
        violations.extend(check_join_discipline(&f.rel, &stripped));
        violations.extend(check_instant_discipline(&f.rel, &stripped));
        violations.extend(check_socket_unwrap(&f.rel, &stripped));
    }

    match fs::read_to_string(root.join("DESIGN.md")) {
        Ok(design) => {
            let headings = design_headings(&design);
            for f in core.iter().chain(aux.iter()) {
                violations.extend(check_citations(&f.rel, &strip_strings(&f.raw), &headings));
            }
        }
        Err(_) => violations.push(Violation {
            file: "DESIGN.md".into(),
            line: 1,
            msg: "missing — citation check cannot run".into(),
        }),
    }

    let mut roots: Vec<PathBuf> =
        vec![root.join("src/lib.rs"), root.join("vendor/shuttle/src/lib.rs")];
    if let Ok(rd) = fs::read_dir(root.join("crates")) {
        for e in rd.flatten() {
            roots.push(e.path().join("src/lib.rs"));
        }
    }
    roots.sort();
    for p in roots {
        if let Ok(text) = fs::read_to_string(&p) {
            violations.extend(check_hygiene(&rel(root, &p), &text));
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for v in &violations {
        eprintln!("error: {v}");
    }
    if violations.is_empty() {
        eprintln!(
            "tss-lint: clean ({} files, {} Relaxed sites allowlisted)",
            core.len() + aux.len(),
            sites.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("tss-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut print_relaxed = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--print-relaxed" => print_relaxed = true,
            "--help" | "-h" => {
                println!(
                    "tss-lint [--root DIR] [--print-relaxed]\n\
                     Static checks for the tss execution core (DESIGN.md §10):\n\
                     SAFETY comments, the Ordering::Relaxed allowlist, the sync\n\
                     facade boundary, DESIGN.md citation integrity, crate\n\
                     hygiene attributes, the JoinHandle unwrap ban (DESIGN.md\n\
                     §11), the Instant::now timing-facade ban (DESIGN.md\n\
                     §12.1), the SchedPolicy facade ban (DESIGN.md §13), and\n\
                     the socket-unwrap ban in the service crates (DESIGN.md\n\
                     §14.2). Exits nonzero on any violation."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    run(&root, print_relaxed)
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &str) -> Vec<&str> {
        s.lines().collect()
    }

    #[test]
    fn strip_blanks_comments_and_strings_but_keeps_lines() {
        let src = "let a = \"unsafe\"; // unsafe here\n/* unsafe\nstill */ let b = 'x';\n";
        let out = strip_code(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(!out.contains("unsafe"));
        assert!(out.contains("let a = "));
        assert!(out.contains("let b = "));
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"Ordering::Relaxed \"quoted\"\"#; }";
        let out = strip_code(src);
        assert!(!out.contains("Relaxed"));
        assert!(out.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn strip_handles_nested_block_comments_and_escapes() {
        let src = "/* outer /* inner */ still comment */ let c = '\\n'; let s = \"a\\\"unsafe\";";
        let out = strip_code(src);
        assert!(!out.contains("unsafe"));
        assert!(!out.contains("comment"));
        assert!(out.contains("let c ="));
    }

    #[test]
    fn word_boundaries_exclude_identifiers() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(has_word("x = unsafe;", "unsafe"));
        assert!(!has_word("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(!has_word("deny(unsafe_code)", "unsafe"));
    }

    #[test]
    fn documented_unsafe_passes() {
        let src = "\
// SAFETY: ptr is valid, see grow().
let x = unsafe { *p };
";
        let stripped = strip_code(src);
        let v = check_unsafe_documented("f.rs", &lines(src), &lines(&stripped));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn chained_unsafe_impls_share_one_comment() {
        let src = "\
// SAFETY: cells are atomics; cross-thread reads are validated.
unsafe impl Send for T {}
unsafe impl Sync for T {}
";
        let stripped = strip_code(src);
        let v = check_unsafe_documented("f.rs", &lines(src), &lines(&stripped));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn undocumented_unsafe_fails_even_behind_attr() {
        let src = "\
// just a comment, not the magic word
#[inline]
unsafe fn f() {}

let y = unsafe { g() };
";
        let stripped = strip_code(src);
        let v = check_unsafe_documented("f.rs", &lines(src), &lines(&stripped));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 5);
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let src = "let m = \"unsafe soup\"; // unsafe? no.\n";
        let stripped = strip_code(src);
        let v = check_unsafe_documented("f.rs", &lines(src), &lines(&stripped));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allowlist_round_trip() {
        let (entries, bad) = parse_allowlist(
            "ci/relaxed_allowlist.txt",
            "# comment\n\ncrates/exec/src/deque.rs:84  counter only\nbad-line\nf.rs:9\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].file, "crates/exec/src/deque.rs");
        assert_eq!(entries[0].line, 84);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].msg.contains("malformed"));
        assert!(bad[1].msg.contains("no rationale"));
    }

    #[test]
    fn relaxed_flags_both_directions() {
        let sites = vec![
            RelaxedSite { file: "a.rs".into(), line: 3 },
            RelaxedSite { file: "a.rs".into(), line: 7 },
        ];
        let entries = vec![
            AllowEntry { file: "a.rs".into(), line: 3, rationale: "ok".into(), at: 1 },
            AllowEntry { file: "b.rs".into(), line: 1, rationale: "gone".into(), at: 2 },
        ];
        let v = check_relaxed("LIST", &sites, &entries);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.file == "a.rs" && x.line == 7));
        assert!(v.iter().any(|x| x.file == "LIST" && x.msg.contains("stale")));
    }

    #[test]
    fn relaxed_in_comments_does_not_count() {
        let src = "// Ordering::Relaxed would be wrong here\nx.load(Ordering::Acquire);\n";
        let stripped = strip_code(src);
        assert!(find_relaxed("f.rs", &lines(&stripped)).is_empty());
    }

    #[test]
    fn facade_scope_is_exact() {
        assert!(facade_scoped("crates/exec/src/deque.rs"));
        assert!(facade_scoped("crates/exec/src/executor.rs"));
        assert!(facade_scoped("crates/core/src/fabric.rs"));
        assert!(!facade_scoped("crates/exec/src/sync.rs"));
        assert!(!facade_scoped("crates/core/src/lib.rs"));
        assert!(!facade_scoped("vendor/shuttle/src/sync.rs"));
    }

    #[test]
    fn facade_catches_std_sync_imports() {
        let src = "\
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Condvar, Mutex};
use std::sync::Arc;
use crate::sync::atomic::AtomicU32;
";
        let stripped = strip_code(src);
        let v = check_facade("crates/exec/src/deque.rs", &lines(&stripped));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!((v[0].line, v[1].line), (1, 2));
    }

    #[test]
    fn sched_policy_files_must_use_the_facade_everywhere() {
        // A policy impl outside crates/exec/src/ still gets the scan —
        // `Arc` alone passes (no shuttle double exists), but any other
        // `std::sync` primitive is flagged even there.
        let src = "\
use std::sync::Arc;
use std::sync::RwLock;
use tss_exec::sync::Mutex;
struct MyPolicy;
impl SchedPolicy for MyPolicy {}
";
        let stripped = strip_code(src);
        let v = check_sched_policy_facade("crates/bench/src/bin/custom.rs", &lines(&stripped));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].msg.contains("SchedPolicy"));

        // A grouped import smuggling more than Arc is still flagged.
        let src = "use std::sync::{Arc, Mutex};\nimpl SchedPolicy for Q {}\n";
        let stripped = strip_code(src);
        let v = check_sched_policy_facade("crates/bench/src/bin/custom.rs", &lines(&stripped));
        assert_eq!(v.len(), 1, "{v:?}");

        // Path-qualified impls count too.
        let src = "use std::sync::Mutex;\nimpl sched::SchedPolicy for P {}\n";
        let stripped = strip_code(src);
        let v = check_sched_policy_facade("crates/exec/src/custom.rs", &lines(&stripped));
        assert_eq!(v.len(), 1, "{v:?}");

        // No impl, no scan — ordinary files are the facade check's job.
        let src = "use std::sync::Arc;\nfn f() {}\n";
        let stripped = strip_code(src);
        assert!(check_sched_policy_facade("crates/bench/src/x.rs", &lines(&stripped)).is_empty());
    }

    #[test]
    fn citation_tokens_trim_sentence_periods() {
        let toks = section_tokens("see DESIGN.md §4. Also §9.2. And §10.1, §3");
        let vals: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(vals, vec!["4", "9.2", "10.1", "3"]);
    }

    #[test]
    fn citations_resolve_against_headings() {
        let design = "# DESIGN\n## §1 Intro\n### §1.1 Sub\n## §2 More\nbody §99 not a heading\n";
        let headings = design_headings(design);
        assert!(headings.contains("1.1") && !headings.contains("99"));
        let v = check_citations("f.rs", "// §1.1 ok\n// §2 ok\n// §9.9 nope\n", &headings);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("§9.9"));
    }

    #[test]
    fn citations_in_string_literals_are_not_citations() {
        let src = "// real cite §1\nlet fixture = \"fake cite §99\";\n";
        let kept = strip_strings(src);
        let toks: Vec<String> = section_tokens(&kept).into_iter().map(|(_, t)| t).collect();
        assert_eq!(toks, vec!["1"]);
    }

    #[test]
    fn join_unwrap_outside_tests_is_flagged() {
        let src = "\
fn joiner(h: std::thread::JoinHandle<()>) {
    h.join().unwrap();
}
fn expecter(h: std::thread::JoinHandle<()>) {
    h.join().expect(\"worker died\");
}
fn structured(h: std::thread::JoinHandle<()>) -> bool {
    h.join().is_err()
}
";
        let stripped = strip_code(src);
        let v = check_join_discipline("crates/exec/src/executor.rs", &lines(&stripped));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!((v[0].line, v[1].line), (2, 5));
        assert!(v[0].msg.contains("WorkerPanic"));
    }

    #[test]
    fn join_unwrap_inside_cfg_test_regions_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f(h: std::thread::JoinHandle<()>) {
        h.join().unwrap();
    }
}
fn prod(h: std::thread::JoinHandle<()>) {
    h.join().unwrap();
}
";
        let stripped = strip_code(src);
        let v = check_join_discipline("crates/exec/src/deque.rs", &lines(&stripped));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 8);
    }

    #[test]
    fn join_unwrap_in_test_paths_and_unwrap_or_else_are_exempt() {
        let src = "h.join().unwrap();\n";
        let stripped = strip_code(src);
        assert!(check_join_discipline("crates/exec/tests/chaos.rs", &lines(&stripped)).is_empty());
        assert!(check_join_discipline("crates/bench/benches/x.rs", &lines(&stripped)).is_empty());
        // The structured fallback is the idiom we *want*; it must not match.
        let ok = "let r = h.join().unwrap_or_else(|p| handle(p));\n";
        let stripped = strip_code(ok);
        assert!(check_join_discipline("crates/exec/src/executor.rs", &lines(&stripped)).is_empty());
    }

    #[test]
    fn instant_now_in_exec_production_code_is_flagged() {
        let src = "\
fn timer() {
    let t0 = std::time::Instant::now();
    let t1 = Instant::now();
    let s = tss_obs::clock::Stamp::now();
}
";
        let stripped = strip_code(src);
        let v = check_instant_discipline("crates/exec/src/executor.rs", &lines(&stripped));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!((v[0].line, v[1].line), (2, 3));
        assert!(v[0].msg.contains("Stamp"), "must point at the facade: {}", v[0].msg);
        // The facade's own `Stamp::now()` never matches.
        assert!(!v.iter().any(|x| x.line == 4), "{v:?}");
    }

    #[test]
    fn instant_now_outside_the_exec_core_or_in_tests_is_exempt() {
        let src = "let t0 = Instant::now();\n";
        let stripped = strip_code(src);
        // Other crates keep their own timing (harnesses time whole runs).
        assert!(
            check_instant_discipline("crates/bench/src/bin/exec.rs", &lines(&stripped)).is_empty()
        );
        assert!(check_instant_discipline("crates/obs/src/clock.rs", &lines(&stripped)).is_empty());
        // Integration tests of the exec crate are exempt by path.
        assert!(
            check_instant_discipline("crates/exec/tests/chaos.rs", &lines(&stripped)).is_empty()
        );
        // #[cfg(test)] regions inside the core are exempt by mask.
        let gated = "#[cfg(test)]\nmod tests {\n    fn f() { Instant::now(); }\n}\n";
        let stripped = strip_code(gated);
        assert!(
            check_instant_discipline("crates/exec/src/executor.rs", &lines(&stripped)).is_empty()
        );
        // Comments and strings never count.
        let doc = "// Instant::now() is banned here\nlet s = \"Instant::now\";\n";
        let stripped = strip_code(doc);
        assert!(
            check_instant_discipline("crates/exec/src/payload.rs", &lines(&stripped)).is_empty()
        );
    }

    #[test]
    fn socket_unwrap_in_service_production_code_is_flagged() {
        let src = "\
fn f(s: &mut TcpStream, buf: &[u8]) {
    s.write_all(buf).unwrap();
    s.read_exact(&mut hdr).expect(\"short read\");
    let frame = read_frame(s).unwrap();
    s.write_all(buf)?;
}
";
        let stripped = strip_code(src);
        let v = check_socket_unwrap("crates/server/src/session.rs", &lines(&stripped));
        assert_eq!(v.len(), 3, "{v:?}");
        assert_eq!((v[0].line, v[1].line, v[2].line), (2, 3, 4));
        assert!(v[0].msg.contains("structured"), "points at session errors: {}", v[0].msg);
        // The same code in the client crate is equally in scope.
        assert_eq!(check_socket_unwrap("crates/client/src/lib.rs", &lines(&stripped)).len(), 3);
    }

    #[test]
    fn socket_unwrap_spares_locks_tests_and_other_crates() {
        // A poisoned-lock expect is a deliberate invariant, not socket I/O.
        let lock = "let st = self.state.lock().expect(\"pool state poisoned\");\n";
        let stripped = strip_code(lock);
        assert!(check_socket_unwrap("crates/server/src/pool.rs", &lines(&stripped)).is_empty());

        let bad = "s.write_all(buf).unwrap();\n";
        let stripped = strip_code(bad);
        // Integration tests of the service crates are exempt by path...
        assert!(check_socket_unwrap("crates/server/tests/chaos.rs", &lines(&stripped)).is_empty());
        // ...and so is everything outside proto/server/client entirely.
        assert!(check_socket_unwrap("crates/bench/src/bin/serve.rs", &lines(&stripped)).is_empty());
        assert!(check_socket_unwrap("crates/exec/src/executor.rs", &lines(&stripped)).is_empty());

        // #[cfg(test)] regions inside a service crate are exempt by mask.
        let gated = "#[cfg(test)]\nmod tests {\n    fn f() { s.write_all(b).unwrap(); }\n}\n";
        let stripped = strip_code(gated);
        assert!(check_socket_unwrap("crates/proto/src/wire.rs", &lines(&stripped)).is_empty());
    }

    #[test]
    fn test_region_mask_handles_braceless_items_and_cfg_attrs() {
        let src = "\
#[cfg(test)]
use std::thread;
fn prod() {}
#[cfg(all(test, feature = \"x\"))]
fn gated() {
    inner();
}
fn after() {}
";
        let stripped = strip_code(src);
        let mask = test_region_mask(&lines(&stripped));
        assert_eq!(mask, vec![true, true, false, true, true, true, true, false]);
    }

    #[test]
    fn hygiene_accepts_either_attr_rejects_neither() {
        assert!(check_hygiene("a.rs", "#![forbid(unsafe_code)]\n").is_empty());
        assert!(check_hygiene("a.rs", "#![deny(unsafe_op_in_unsafe_fn)]\n").is_empty());
        assert_eq!(check_hygiene("a.rs", "pub fn f() {}\n").len(), 1);
    }
}
