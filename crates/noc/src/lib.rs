//! Segmented two-level ring interconnect (paper, Table II).
//!
//! The simulated CMP connects its cores with a two-level ring: each group
//! of 8 cores sits on a *local ring* together with a bridge node, and a
//! *global ring* connects the bridges, the 32 L2 banks, the 4 memory
//! controllers, and the task-superscalar frontend. Links move 16
//! bytes/cycle, and each segment supports 4 concurrent connections.
//!
//! # Model
//!
//! A message from `src` to `dst` traverses one or more rings. Per ring we
//! charge:
//!
//! - **distance latency** — `hops × hop_latency` where hops is the
//!   shorter way around the ring, and
//! - **serialization + contention** — the ring is a [`LaneServer`] with 4
//!   lanes (the paper's "4 concurrent connections per segment"); a
//!   message occupies a lane for `ceil(bytes / 16)` cycles.
//!
//! This is a deliberate simplification of true per-segment wormhole
//! switching: it preserves the bandwidth ceiling, the concurrency limit,
//! and distance-proportional latency, which are the properties the
//! evaluation is sensitive to (DESIGN.md §3.3).

#![forbid(unsafe_code)]

use tss_sim::{Cycle, LaneServer};

/// Endpoints attachable to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Worker core `i`.
    Core(usize),
    /// Shared L2 bank `i`.
    L2Bank(usize),
    /// Memory controller `i`.
    MemCtrl(usize),
    /// The task superscalar frontend (gateway + decode modules).
    Frontend,
}

/// Ring network parameters (defaults are Table II).
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Number of worker cores.
    pub cores: usize,
    /// Cores per local ring (8 in the paper).
    pub cores_per_ring: usize,
    /// L2 banks on the global ring (32 in the paper).
    pub l2_banks: usize,
    /// Memory controllers on the global ring (4 in the paper).
    pub mem_ctrls: usize,
    /// Link bandwidth in bytes per cycle (16 in the paper).
    pub bytes_per_cycle: u64,
    /// Concurrent connections per segment (4 in the paper).
    pub lanes: usize,
    /// Cycles per hop between adjacent ring stops.
    pub hop_latency: Cycle,
}

impl RingConfig {
    /// Table II defaults for a CMP of `cores` processors.
    pub fn for_cores(cores: usize) -> Self {
        RingConfig {
            cores,
            cores_per_ring: 8,
            l2_banks: 32,
            mem_ctrls: 4,
            bytes_per_cycle: 16,
            lanes: 4,
            hop_latency: 1,
        }
    }

    /// Number of local rings.
    pub fn ring_count(&self) -> usize {
        self.cores.div_ceil(self.cores_per_ring)
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        Self::for_cores(256)
    }
}

/// The two-level ring: routes messages and accounts for contention.
#[derive(Debug)]
pub struct RingNetwork {
    cfg: RingConfig,
    local: Vec<LaneServer>,
    global: LaneServer,
    messages: u64,
    total_bytes: u64,
}

impl RingNetwork {
    /// Builds the network for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has zero cores, zero `cores_per_ring`, or zero
    /// bandwidth.
    pub fn new(cfg: RingConfig) -> Self {
        assert!(cfg.cores > 0, "a CMP needs cores");
        assert!(cfg.cores_per_ring > 0, "local rings need capacity");
        assert!(cfg.bytes_per_cycle > 0, "links need bandwidth");
        let rings = cfg.ring_count();
        RingNetwork {
            local: (0..rings).map(|_| LaneServer::new(cfg.lanes)).collect(),
            global: LaneServer::new(cfg.lanes),
            cfg,
            messages: 0,
            total_bytes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    fn local_ring_of(&self, node: Node) -> Option<usize> {
        match node {
            Node::Core(c) => {
                assert!(c < self.cfg.cores, "core {c} out of range");
                Some(c / self.cfg.cores_per_ring)
            }
            _ => None,
        }
    }

    /// Position of a node on its local ring (cores) in stop units.
    fn local_pos(&self, node: Node) -> usize {
        match node {
            Node::Core(c) => c % self.cfg.cores_per_ring,
            _ => unreachable!("only cores live on local rings"),
        }
    }

    /// Position of a node (or its bridge) on the global ring.
    fn global_pos(&self, node: Node) -> usize {
        let rings = self.cfg.ring_count();
        match node {
            Node::Core(c) => c / self.cfg.cores_per_ring, // bridge position
            Node::L2Bank(b) => {
                assert!(b < self.cfg.l2_banks, "L2 bank {b} out of range");
                rings + b
            }
            Node::MemCtrl(m) => {
                assert!(m < self.cfg.mem_ctrls, "memory controller {m} out of range");
                rings + self.cfg.l2_banks + m
            }
            Node::Frontend => rings + self.cfg.l2_banks + self.cfg.mem_ctrls,
        }
    }

    fn global_stops(&self) -> usize {
        self.cfg.ring_count() + self.cfg.l2_banks + self.cfg.mem_ctrls + 1
    }

    fn ring_hops(pos_a: usize, pos_b: usize, stops: usize) -> usize {
        let d = pos_a.abs_diff(pos_b);
        d.min(stops - d)
    }

    fn serialization(&self, bytes: u64) -> Cycle {
        bytes.div_ceil(self.cfg.bytes_per_cycle).max(1)
    }

    /// Unloaded (contention-free) latency from `src` to `dst` for a
    /// message of `bytes`.
    pub fn pure_latency(&self, src: Node, dst: Node, bytes: u64) -> Cycle {
        let ser = self.serialization(bytes);
        self.hop_count(src, dst) as Cycle * self.cfg.hop_latency + ser
    }

    /// Total ring stops traversed between `src` and `dst`.
    pub fn hop_count(&self, src: Node, dst: Node) -> usize {
        let (sr, dr) = (self.local_ring_of(src), self.local_ring_of(dst));
        match (sr, dr) {
            (Some(a), Some(b)) if a == b => {
                let stops = self.cfg.cores_per_ring + 1; // + bridge
                Self::ring_hops(self.local_pos(src), self.local_pos(dst), stops)
            }
            _ => {
                let mut hops = 0;
                let stops_local = self.cfg.cores_per_ring + 1;
                if sr.is_some() {
                    // src core -> its bridge (bridge sits at position `stops-1`).
                    hops += Self::ring_hops(self.local_pos(src), stops_local - 1, stops_local);
                }
                hops += Self::ring_hops(
                    self.global_pos(src),
                    self.global_pos(dst),
                    self.global_stops(),
                );
                if dr.is_some() {
                    hops += Self::ring_hops(stops_local - 1, self.local_pos(dst), stops_local);
                }
                hops
            }
        }
    }

    /// Routes a message: reserves bandwidth on every ring traversed and
    /// returns the arrival cycle (≥ `now + pure_latency`).
    pub fn route(&mut self, src: Node, dst: Node, bytes: u64, now: Cycle) -> Cycle {
        self.messages += 1;
        self.total_bytes += bytes;
        let ser = self.serialization(bytes);
        let (sr, dr) = (self.local_ring_of(src), self.local_ring_of(dst));
        let mut depart = now;
        match (sr, dr) {
            (Some(a), Some(b)) if a == b => {
                depart = self.local[a].occupy(depart, ser);
            }
            _ => {
                if let Some(a) = sr {
                    depart = self.local[a].occupy(depart, ser);
                }
                depart = self.global.occupy(depart, ser);
                if let Some(b) = dr {
                    depart = self.local[b].occupy(depart, ser);
                }
            }
        }
        // `depart` already includes one serialization per ring; add the
        // hop (distance) latency on top.
        depart + self.hop_count(src, dst) as Cycle * self.cfg.hop_latency
    }

    /// Messages routed so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes routed so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Global-ring utilization over `[0, horizon]`.
    pub fn global_utilization(&self, horizon: Cycle) -> f64 {
        self.global.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(cores: usize) -> RingNetwork {
        RingNetwork::new(RingConfig::for_cores(cores))
    }

    #[test]
    fn ring_count_rounds_up() {
        assert_eq!(RingConfig::for_cores(256).ring_count(), 32);
        assert_eq!(RingConfig::for_cores(12).ring_count(), 2);
    }

    #[test]
    fn same_ring_distance_is_short() {
        let n = net(64);
        // Cores 0 and 1 share a local ring.
        assert_eq!(n.hop_count(Node::Core(0), Node::Core(1)), 1);
        // Shorter way around: 0 -> 7 is 2 hops on a 9-stop ring
        // (0 -> bridge -> 7).
        assert_eq!(n.hop_count(Node::Core(0), Node::Core(7)), 2);
    }

    #[test]
    fn cross_ring_goes_via_global() {
        let n = net(64);
        let hops = n.hop_count(Node::Core(0), Node::Core(63));
        // core0 -> bridge0 (1) + global bridge0 -> bridge7 (7) +
        // bridge7 -> core63 on its local ring.
        assert!(hops >= 8, "got {hops}");
    }

    #[test]
    fn frontend_reaches_everything() {
        let n = net(32);
        for c in [0usize, 8, 31] {
            assert!(n.hop_count(Node::Frontend, Node::Core(c)) > 0);
        }
        assert!(n.hop_count(Node::Frontend, Node::L2Bank(0)) > 0);
        assert!(n.hop_count(Node::Frontend, Node::MemCtrl(3)) > 0);
    }

    #[test]
    fn pure_latency_scales_with_bytes() {
        let n = net(32);
        let small = n.pure_latency(Node::Frontend, Node::Core(0), 16);
        let big = n.pure_latency(Node::Frontend, Node::Core(0), 1600);
        assert_eq!(big - small, 100 - 1);
    }

    #[test]
    fn route_accounts_contention() {
        let mut n = net(32);
        let free = n.pure_latency(Node::Core(0), Node::Core(1), 64);
        // Saturate the 4 lanes of the local ring with big transfers.
        for _ in 0..4 {
            n.route(Node::Core(0), Node::Core(1), 16_000, 0);
        }
        let arrival = n.route(Node::Core(2), Node::Core(3), 64, 0);
        assert!(arrival > free, "fifth message must queue behind the 4 lanes: {arrival} vs {free}");
        assert_eq!(n.messages(), 5);
    }

    #[test]
    fn parallel_lanes_allow_concurrency() {
        let mut n = net(32);
        let a = n.route(Node::Core(0), Node::Core(1), 160, 0);
        let b = n.route(Node::Core(4), Node::Core(5), 160, 0);
        // Two messages on different lanes of the same ring finish at
        // similar times (same serialization, different distance only).
        assert!(a.abs_diff(b) <= 16, "{a} vs {b}");
    }

    #[test]
    fn zero_byte_message_still_takes_a_cycle() {
        let n = net(32);
        assert!(n.pure_latency(Node::Core(0), Node::Core(1), 0) >= 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let n = net(32);
        let _ = n.hop_count(Node::Core(99), Node::Frontend);
    }

    #[test]
    fn utilization_reported() {
        let mut n = net(32);
        n.route(Node::Core(0), Node::L2Bank(0), 1600, 0);
        assert!(n.global_utilization(1000) > 0.0);
        assert_eq!(n.total_bytes(), 1600);
    }
}
