//! End-to-end protocol tests for the task superscalar frontend, using
//! the idealized instant backend so that only frontend behaviour is
//! under test. Schedules are validated against the `tss-trace` oracle.

use std::sync::Arc;

use tss_pipeline::assembly::{build_frontend, frontend_stats, instant_backend, InstantBackend};
use tss_pipeline::{FrontendConfig, Msg};
use tss_sim::{Rng, Simulation};
use tss_trace::{validate_schedule, DepGraph, Direction, OperandDesc, TaskTrace};

fn run_trace(
    trace: TaskTrace,
    cfg: FrontendConfig,
) -> (Simulation<Msg>, tss_pipeline::Topology, Arc<TaskTrace>) {
    let trace = Arc::new(trace);
    let mut sim = Simulation::<Msg>::new();
    let topo = build_frontend(&mut sim, trace.clone(), &cfg, instant_backend);
    sim.run();
    (sim, topo, trace)
}

fn assert_valid(sim: &Simulation<Msg>, topo: &tss_pipeline::Topology, trace: &TaskTrace) {
    let backend = sim.component::<InstantBackend>(topo.backend);
    assert_eq!(backend.completed() as usize, trace.len(), "every task must complete");
    let graph = DepGraph::from_trace(trace);
    validate_schedule(&graph, backend.schedule()).expect("schedule must respect the oracle");
}

fn small_cfg() -> FrontendConfig {
    FrontendConfig {
        num_trs: 2,
        num_ort: 2,
        trs_total_bytes: 64 << 10,
        ort_total_bytes: 32 << 10,
        ovt_total_bytes: 32 << 10,
        ..FrontendConfig::default()
    }
}

#[test]
fn producer_consumer_is_ordered() {
    let mut tr = TaskTrace::new("pc");
    let k = tr.add_kernel("k");
    tr.push_task(k, 5_000, vec![OperandDesc::output(0x1000, 512)]);
    tr.push_task(k, 5_000, vec![OperandDesc::input(0x1000, 512)]);
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
    let sched = sim.component::<InstantBackend>(topo.backend).schedule().to_vec();
    let prod = sched.iter().find(|r| r.task == 0).expect("task 0 ran");
    let cons = sched.iter().find(|r| r.task == 1).expect("task 1 ran");
    assert!(cons.start >= prod.end, "consumer must wait for producer");
}

#[test]
fn renaming_lets_writers_overlap() {
    // Two writers to the same object: with renaming they overlap.
    let mut tr = TaskTrace::new("ww");
    let k = tr.add_kernel("k");
    tr.push_task(k, 50_000, vec![OperandDesc::output(0x1000, 512)]);
    tr.push_task(k, 50_000, vec![OperandDesc::output(0x1000, 512)]);
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
    let sched = sim.component::<InstantBackend>(topo.backend).schedule().to_vec();
    let a = sched.iter().find(|r| r.task == 0).expect("ran");
    let b = sched.iter().find(|r| r.task == 1).expect("ran");
    assert!(
        b.start < a.end,
        "renamed writers must overlap: {} vs [{}, {}]",
        b.start,
        a.start,
        a.end
    );
    let stats = frontend_stats(&sim, &topo, &small_cfg());
    assert_eq!(stats.ort.renames, 2);
}

#[test]
fn disabling_renaming_serializes_writers() {
    let mut tr = TaskTrace::new("ww");
    let k = tr.add_kernel("k");
    tr.push_task(k, 50_000, vec![OperandDesc::output(0x1000, 512)]);
    tr.push_task(k, 50_000, vec![OperandDesc::output(0x1000, 512)]);
    let cfg = FrontendConfig { renaming: false, ..small_cfg() };
    let trace = Arc::new(tr);
    let mut sim = Simulation::<Msg>::new();
    let topo = build_frontend(&mut sim, trace.clone(), &cfg, instant_backend);
    sim.run();
    let sched = sim.component::<InstantBackend>(topo.backend).schedule().to_vec();
    let a = sched.iter().find(|r| r.task == 0).expect("ran");
    let b = sched.iter().find(|r| r.task == 1).expect("ran");
    assert!(b.start >= a.end, "without renaming WaW must serialize");
    let stats = frontend_stats(&sim, &topo, &cfg);
    assert_eq!(stats.ort.renames, 0);
}

#[test]
fn inout_chain_serializes_and_readers_run_parallel() {
    let mut tr = TaskTrace::new("mix");
    let k = tr.add_kernel("k");
    // producer -> two readers (parallel) -> inout (after both readers)
    tr.push_task(k, 10_000, vec![OperandDesc::output(0x2000, 256)]);
    tr.push_task(k, 10_000, vec![OperandDesc::input(0x2000, 256)]);
    tr.push_task(k, 10_000, vec![OperandDesc::input(0x2000, 256)]);
    tr.push_task(k, 10_000, vec![OperandDesc::inout(0x2000, 256)]);
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
    let sched = sim.component::<InstantBackend>(topo.backend).schedule().to_vec();
    let get = |t: usize| sched.iter().find(|r| r.task == t).expect("ran");
    let (r1, r2, io) = (get(1), get(2), get(3));
    assert!(r1.start < r2.end && r2.start < r1.end, "readers must overlap");
    assert!(io.start >= r1.end && io.start >= r2.end, "inout waits for all readers");
}

#[test]
fn scalars_never_block_readiness() {
    let mut tr = TaskTrace::new("scalar");
    let k = tr.add_kernel("k");
    tr.push_task(
        k,
        1_000,
        vec![OperandDesc::scalar(8), OperandDesc::output(0x3000, 128), OperandDesc::scalar(4)],
    );
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
}

#[test]
fn same_task_read_write_does_not_deadlock() {
    // A task writes an object through one operand and reads it through
    // another: must not wait on itself.
    let mut tr = TaskTrace::new("self");
    let k = tr.add_kernel("k");
    tr.push_task(k, 1_000, vec![OperandDesc::output(0x4000, 128), OperandDesc::input(0x4000, 128)]);
    tr.push_task(k, 1_000, vec![OperandDesc::input(0x4000, 128)]);
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
}

#[test]
fn window_fills_and_recycles_under_tiny_trs() {
    // TRS storage of 16 blocks: far fewer than the 200 single-operand
    // tasks; the pipeline must stall the gateway and recycle slots.
    let mut tr = TaskTrace::new("tiny-window");
    let k = tr.add_kernel("k");
    for i in 0..200u64 {
        tr.push_task(k, 2_000, vec![OperandDesc::output(0x10_0000 + i * 0x100, 64)]);
    }
    let cfg = FrontendConfig {
        num_trs: 1,
        num_ort: 1,
        trs_total_bytes: 16 * 128,
        ort_total_bytes: 64 << 10,
        ovt_total_bytes: 64 << 10,
        ..FrontendConfig::default()
    };
    let trace = Arc::new(tr);
    let mut sim = Simulation::<Msg>::new();
    let topo = build_frontend(&mut sim, trace.clone(), &cfg, instant_backend);
    sim.run();
    assert_valid(&sim, &topo, &trace);
    let stats = frontend_stats(&sim, &topo, &cfg);
    assert!(stats.allocs_rejected > 0, "a 16-block TRS must reject some allocations");
    assert!(stats.window_peak <= 16, "window cannot exceed TRS blocks");
    assert_eq!(stats.leaked_tasks, 0, "all storage must drain");
}

#[test]
fn ort_set_exhaustion_stalls_and_recovers() {
    // One ORT with a single 16-way set; 64 distinct live objects force
    // the never-evicting ORT to stall the gateway until entries release.
    let mut tr = TaskTrace::new("ort-full");
    let k = tr.add_kernel("k");
    for i in 0..64u64 {
        tr.push_task(k, 3_000, vec![OperandDesc::output(0x20_0000 + i * 0x1000, 64)]);
    }
    let cfg = FrontendConfig {
        num_trs: 1,
        num_ort: 1,
        trs_total_bytes: 256 << 10,
        ort_total_bytes: 16 * 16, // one 16-way set (16 B entries)
        ovt_total_bytes: 16 * 32, // 16 version records (32 B records)
        ..FrontendConfig::default()
    };
    let trace = Arc::new(tr);
    let mut sim = Simulation::<Msg>::new();
    let topo = build_frontend(&mut sim, trace.clone(), &cfg, instant_backend);
    sim.run();
    assert_valid(&sim, &topo, &trace);
    let stats = frontend_stats(&sim, &topo, &cfg);
    assert!(stats.ort.blocks > 0, "the single set must block at least once");
    assert_eq!(stats.leaked_tasks, 0, "entries must all release");
}

#[test]
fn chains_form_and_forward() {
    // One producer, five readers: consumer chaining forwards data-ready
    // along the chain (Figure 10).
    let mut tr = TaskTrace::new("chain");
    let k = tr.add_kernel("k");
    tr.push_task(k, 1_000, vec![OperandDesc::output(0x5000, 256)]);
    for _ in 0..5 {
        tr.push_task(k, 1_000, vec![OperandDesc::input(0x5000, 256)]);
    }
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
    let stats = frontend_stats(&sim, &topo, &small_cfg());
    assert!(
        stats.chain_forwards + stats.stale_registers >= 3,
        "long reader chains must forward: {} forwards, {} stale",
        stats.chain_forwards,
        stats.stale_registers
    );
}

#[test]
fn decode_times_are_recorded_for_every_task() {
    let mut tr = TaskTrace::new("rate");
    let k = tr.add_kernel("k");
    for i in 0..50u64 {
        tr.push_task(
            k,
            10_000,
            vec![
                OperandDesc::input(0x9000 + (i % 4) * 0x100, 64),
                OperandDesc::output(0xA000 + i * 0x100, 64),
            ],
        );
    }
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
    let stats = frontend_stats(&sim, &topo, &small_cfg());
    assert_eq!(stats.tasks_decoded, 50);
    assert!(stats.decode_rate_cycles > 0.0);
    // Sanity: with default timing a 2-operand task decodes in well under
    // 2000 cycles on average.
    assert!(stats.decode_rate_cycles < 2_000.0, "rate {}", stats.decode_rate_cycles);
}

#[test]
fn random_traces_always_produce_valid_schedules() {
    // Randomized mixes of directions, object counts, and runtimes; the
    // schedule must always satisfy the oracle and fully drain.
    let mut rng = Rng::seeded(0xC0FFEE);
    for round in 0..8 {
        let mut tr = TaskTrace::new("fuzz");
        let k = tr.add_kernel("k");
        let objects = 1 + rng.below(12);
        let n = 40 + rng.below(120);
        for _ in 0..n {
            let nops = 1 + rng.below(4) as usize;
            let mut ops = Vec::new();
            for _ in 0..nops {
                let addr = 0x100_0000 + rng.below(objects) * 0x1_0000;
                let dir = match rng.below(4) {
                    0 => Direction::Out,
                    1 => Direction::InOut,
                    _ => Direction::In,
                };
                // One operand per object per task (matches the paper's
                // model where an operand *is* the object reference).
                if ops.iter().any(|o: &OperandDesc| o.addr == addr) {
                    continue;
                }
                ops.push(OperandDesc::memory(addr, 256, dir));
            }
            if ops.is_empty() {
                ops.push(OperandDesc::scalar(8));
            }
            tr.push_task(k, 500 + rng.below(5_000), ops);
        }
        let cfg = small_cfg();
        let (sim, topo, trace) = run_trace(tr, cfg.clone());
        assert_valid(&sim, &topo, &trace);
        let stats = frontend_stats(&sim, &topo, &cfg);
        assert_eq!(stats.leaked_tasks, 0, "round {round}: leaked state");
    }
}

#[test]
fn determinism_same_seed_same_makespan() {
    let build = || {
        let mut tr = TaskTrace::new("det");
        let k = tr.add_kernel("k");
        let mut rng = Rng::seeded(7);
        for i in 0..100u64 {
            tr.push_task(
                k,
                1_000 + rng.below(10_000),
                vec![OperandDesc::inout(0x100_0000 + (i % 7) * 0x1_0000, 512)],
            );
        }
        tr
    };
    let (sim_a, _, _) = run_trace(build(), small_cfg());
    let (sim_b, _, _) = run_trace(build(), small_cfg());
    assert_eq!(sim_a.now(), sim_b.now());
    assert_eq!(sim_a.events_processed(), sim_b.events_processed());
}

#[test]
fn fragmentation_matches_paper_ballpark() {
    // 3-operand tasks: the paper reports ~20% average waste.
    let mut tr = TaskTrace::new("frag");
    let k = tr.add_kernel("k");
    for i in 0..50u64 {
        tr.push_task(
            k,
            1_000,
            vec![
                OperandDesc::input(0x100_0000 + i * 0x300, 64),
                OperandDesc::input(0x200_0000 + i * 0x300, 64),
                OperandDesc::output(0x300_0000 + i * 0x300, 64),
            ],
        );
    }
    let (sim, topo, _trace) = run_trace(tr, small_cfg());
    let stats = frontend_stats(&sim, &topo, &small_cfg());
    assert!(
        (0.05..0.5).contains(&stats.avg_storage_waste),
        "waste {} should be near the paper's ~20%",
        stats.avg_storage_waste
    );
}

#[test]
fn copybacks_follow_renamed_versions() {
    let mut tr = TaskTrace::new("dma");
    let k = tr.add_kernel("k");
    // Three renamed versions of one object, each read once.
    for _ in 0..3 {
        tr.push_task(k, 1_000, vec![OperandDesc::output(0x6000, 1024)]);
        tr.push_task(k, 1_000, vec![OperandDesc::input(0x6000, 1024)]);
    }
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
    let stats = frontend_stats(&sim, &topo, &small_cfg());
    assert_eq!(stats.ort.renames, 3);
    assert_eq!(stats.ort.copybacks, 3, "every drained renamed version is copied back");
    assert_eq!(stats.ort.copyback_bytes, 3 * 1024);
}

#[test]
fn empty_trace_is_a_noop() {
    let tr = TaskTrace::new("empty");
    let (sim, topo, _trace) = run_trace(tr, small_cfg());
    let stats = frontend_stats(&sim, &topo, &small_cfg());
    assert_eq!(stats.tasks_decoded, 0);
    assert_eq!(sim.now(), 0);
}

#[test]
fn max_operand_task_uses_indirect_blocks() {
    let mut tr = TaskTrace::new("fat");
    let k = tr.add_kernel("k");
    let ops: Vec<OperandDesc> =
        (0..19).map(|i| OperandDesc::input(0x700_0000 + i * 0x1000, 64)).collect();
    tr.push_task(k, 1_000, ops);
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
}

#[test]
fn no_chaining_ablation_still_validates() {
    // One producer, five readers, then an inout: with chaining disabled
    // the producer notifies every reader directly.
    let mut tr = TaskTrace::new("nochain");
    let k = tr.add_kernel("k");
    tr.push_task(k, 5_000, vec![OperandDesc::output(0x5000, 256)]);
    for _ in 0..5 {
        tr.push_task(k, 5_000, vec![OperandDesc::input(0x5000, 256)]);
    }
    tr.push_task(k, 5_000, vec![OperandDesc::inout(0x5000, 256)]);
    let cfg = FrontendConfig { chaining: false, ..small_cfg() };
    let trace = Arc::new(tr);
    let mut sim = Simulation::<Msg>::new();
    let topo = build_frontend(&mut sim, trace.clone(), &cfg, instant_backend);
    sim.run();
    assert_valid(&sim, &topo, &trace);
    let stats = frontend_stats(&sim, &topo, &cfg);
    assert_eq!(stats.chain_forwards, 0, "direct notification never forwards");
    assert_eq!(stats.leaked_tasks, 0);
}

#[test]
fn chain_histogram_counts_readers_per_version() {
    // One version with 3 readers, one with 0.
    let mut tr = TaskTrace::new("hist");
    let k = tr.add_kernel("k");
    tr.push_task(k, 1_000, vec![OperandDesc::output(0x7000, 256)]);
    for _ in 0..3 {
        tr.push_task(k, 1_000, vec![OperandDesc::input(0x7000, 256)]);
    }
    tr.push_task(k, 1_000, vec![OperandDesc::output(0x8000, 256)]);
    let (sim, topo, trace) = run_trace(tr, small_cfg());
    assert_valid(&sim, &topo, &trace);
    let stats = frontend_stats(&sim, &topo, &small_cfg());
    let hist = stats.ort.chain_hist;
    assert_eq!(hist[3], 1, "one version with 3 readers: {hist:?}");
    assert!(hist[0] >= 1, "at least one reader-less version: {hist:?}");
}
