//! Tests for the Section III.B extension: multiple task-generating
//! threads over data-partitioned traces.

use std::sync::Arc;

use tss_pipeline::assembly::{
    build_frontend_threaded, frontend_stats, instant_backend, InstantBackend,
};
use tss_pipeline::{FrontendConfig, Msg};
use tss_sim::Simulation;
use tss_trace::{validate_schedule, DepGraph, OperandDesc, TaskTrace};

/// Two disjoint producer->consumer chains, interleaved in creation order
/// and assigned to two threads.
fn partitioned_trace(chains: usize, per_chain: usize) -> (TaskTrace, Vec<u8>) {
    let mut tr = TaskTrace::new("part");
    let k = tr.add_kernel("k");
    let mut thread_of = Vec::new();
    for i in 0..per_chain {
        for c in 0..chains {
            let addr = 0x100_0000 + c as u64 * 0x10_0000;
            let _ = i;
            tr.push_task(k, 5_000, vec![OperandDesc::inout(addr, 256)]);
            thread_of.push(c as u8);
        }
    }
    (tr, thread_of)
}

fn cfg() -> FrontendConfig {
    FrontendConfig {
        num_trs: 2,
        num_ort: 2,
        trs_total_bytes: 64 << 10,
        ort_total_bytes: 32 << 10,
        ovt_total_bytes: 32 << 10,
        ..FrontendConfig::default()
    }
}

#[test]
fn two_threads_complete_and_validate() {
    let (tr, thread_of) = partitioned_trace(2, 50);
    let trace = Arc::new(tr);
    let mut sim = Simulation::<Msg>::new();
    let topo = build_frontend_threaded(
        &mut sim,
        trace.clone(),
        &cfg(),
        Arc::new(thread_of),
        instant_backend,
    );
    assert_eq!(topo.generators.len(), 2);
    sim.run();
    let backend = sim.component::<InstantBackend>(topo.backend);
    assert_eq!(backend.completed() as usize, trace.len());
    let g = DepGraph::from_trace(&trace);
    validate_schedule(&g, backend.schedule()).expect("valid schedule");
    let stats = frontend_stats(&sim, &topo, &cfg());
    assert_eq!(stats.leaked_tasks, 0);
    assert_eq!(stats.tasks_decoded as usize, trace.len());
}

#[test]
fn threads_decouple_issue_order() {
    // One thread's chain is long-running; the other's tasks must not be
    // blocked behind it at decode (per-thread order only).
    let mut tr = TaskTrace::new("decouple");
    let k = tr.add_kernel("k");
    let mut thread_of = Vec::new();
    // Thread 0: a long chain on object A.
    for _ in 0..30 {
        tr.push_task(k, 100_000, vec![OperandDesc::inout(0xA000, 256)]);
    }
    thread_of.extend(std::iter::repeat_n(0u8, 30));
    // Thread 1: independent short tasks on distinct objects.
    for i in 0..30u64 {
        tr.push_task(k, 1_000, vec![OperandDesc::output(0xB_0000 + i * 0x1000, 256)]);
    }
    thread_of.extend(std::iter::repeat_n(1u8, 30));
    let trace = Arc::new(tr);
    let mut sim = Simulation::<Msg>::new();
    let topo = build_frontend_threaded(
        &mut sim,
        trace.clone(),
        &cfg(),
        Arc::new(thread_of),
        instant_backend,
    );
    sim.run();
    let backend = sim.component::<InstantBackend>(topo.backend);
    let sched = backend.schedule();
    // All of thread 1's independent tasks finish before thread 0's chain.
    let t1_done = sched.iter().filter(|r| r.task >= 30).map(|r| r.end).max().unwrap();
    let t0_done = sched.iter().filter(|r| r.task < 30).map(|r| r.end).max().unwrap();
    assert!(t1_done * 10 < t0_done, "thread 1 ({t1_done}) must not wait for thread 0 ({t0_done})");
    let g = DepGraph::from_trace(&trace);
    validate_schedule(&g, sched).expect("valid schedule");
}

#[test]
#[should_panic(expected = "crosses generating threads")]
fn cross_thread_dependency_is_rejected() {
    let mut tr = TaskTrace::new("bad");
    let k = tr.add_kernel("k");
    tr.push_task(k, 1_000, vec![OperandDesc::output(0xC000, 256)]);
    tr.push_task(k, 1_000, vec![OperandDesc::input(0xC000, 256)]);
    let trace = Arc::new(tr);
    let mut sim = Simulation::<Msg>::new();
    let _ = build_frontend_threaded(&mut sim, trace, &cfg(), Arc::new(vec![0, 1]), instant_backend);
}

#[test]
fn single_thread_path_is_unchanged() {
    // build_frontend == build_frontend_threaded with all-zero tags.
    let (tr, _) = partitioned_trace(2, 20);
    let trace = Arc::new(tr);

    let mut sim_a = Simulation::<Msg>::new();
    let topo_a =
        tss_pipeline::assembly::build_frontend(&mut sim_a, trace.clone(), &cfg(), instant_backend);
    sim_a.run();

    let mut sim_b = Simulation::<Msg>::new();
    let topo_b = build_frontend_threaded(
        &mut sim_b,
        trace.clone(),
        &cfg(),
        Arc::new(vec![0u8; trace.len()]),
        instant_backend,
    );
    sim_b.run();

    assert_eq!(sim_a.now(), sim_b.now(), "identical systems must agree");
    let a = sim_a.component::<InstantBackend>(topo_a.backend).schedule();
    let b = sim_b.component::<InstantBackend>(topo_b.backend).schedule();
    assert_eq!(a, b);
}
