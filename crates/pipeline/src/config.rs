//! Frontend configuration: module counts, storage capacities, and timing.
//!
//! Defaults reproduce the paper's chosen operating point (Section VI):
//! 8 TRSs with 6 MB of eDRAM in total, 2 ORTs + 2 OVTs with 512 KB each,
//! 22-cycle eDRAM access, 16-cycle per-packet module processing — about
//! 7 MB of on-chip storage sustaining a window of tens of thousands of
//! tasks and a sub-60 ns decode rate.

use tss_sim::Cycle;

/// Timing parameters of the frontend (Table II, "Task pipeline").
#[derive(Debug, Clone)]
pub struct TimingParams {
    /// eDRAM access latency in cycles (22 in Table II).
    pub edram_latency: Cycle,
    /// Per-packet module processing cost in cycles (16 in Table II);
    /// multiplied by the number of operands a packet carries.
    pub packet_cost: Cycle,
    /// Point-to-point latency between frontend modules, in cycles (the
    /// frontend is a tile grid; one message = a few NoC hops).
    pub frontend_hop: Cycle,
    /// Cycles the task-generating thread needs to pack one task
    /// (base cost; the decoupled thread's task-creation code).
    pub task_gen_base: Cycle,
    /// Additional packing cycles per operand.
    pub task_gen_per_operand: Cycle,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            edram_latency: 22,
            packet_cost: 16,
            frontend_hop: 4,
            // ~11 ns + ~2.5 ns/operand at 3.2 GHz: the injected
            // task-creation code packs the kernel pointer and operand
            // values into a stack buffer (Section V).
            task_gen_base: 36,
            task_gen_per_operand: 8,
        }
    }
}

/// Sizing and feature configuration of the frontend.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Number of task reservation stations (8 at the paper's chosen
    /// operating point; Figure 12 sweeps 1–64).
    pub num_trs: usize,
    /// Number of ORTs; each has exactly one associated OVT (2 at the
    /// chosen operating point; Figure 12 sweeps 1–8).
    pub num_ort: usize,
    /// Total eDRAM across all TRSs, in bytes (6 MB chosen; Figure 15
    /// sweeps 128 KB – 8 MB).
    pub trs_total_bytes: u64,
    /// Total eDRAM across all ORTs, in bytes (512 KB chosen; Figure 14
    /// sweeps 16 KB – 1 MB).
    pub ort_total_bytes: u64,
    /// Total eDRAM across all OVTs, in bytes (512 KB; "an equivalent
    /// exploration of the OVT design space suggests they require a
    /// similar capacity", Section VI.B).
    pub ovt_total_bytes: u64,
    /// Gateway incoming-task buffer, in bytes (1 KB, holding ~20 tasks).
    pub gateway_buffer_bytes: u64,
    /// TRS storage block size in bytes (128 B, Figure 11).
    pub trs_block_bytes: u64,
    /// Bytes per ORT map entry: a 4 B tag share of the two 64 B
    /// tag blocks per 16-way set, plus the last-user operand ID and
    /// current-version pointer.
    pub ort_entry_bytes: u64,
    /// ORT set associativity (16-way, Section IV.B.3).
    pub ort_ways: usize,
    /// Bytes per OVT version record (usage count, next-version and
    /// chain-head pointers, rename-buffer address).
    pub ovt_entry_bytes: u64,
    /// Rename `out` operands (true in the paper; `false` is the ablation
    /// that serializes WaR/WaW like inout).
    pub renaming: bool,
    /// Consumer chaining (Figure 10). `false` is the ablation where each
    /// producer keeps a full consumer list and notifies every consumer
    /// directly on task finish (more TRS storage and producer-side
    /// messages; no forwarding hops).
    pub chaining: bool,
    /// Timing parameters.
    pub timing: TimingParams,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            num_trs: 8,
            num_ort: 2,
            trs_total_bytes: 6 << 20,
            ort_total_bytes: 512 << 10,
            ovt_total_bytes: 512 << 10,
            gateway_buffer_bytes: 1 << 10,
            trs_block_bytes: 128,
            ort_entry_bytes: 16,
            ort_ways: 16,
            ovt_entry_bytes: 32,
            renaming: true,
            chaining: true,
            timing: TimingParams::default(),
        }
    }
}

impl FrontendConfig {
    /// Storage blocks per TRS.
    pub fn blocks_per_trs(&self) -> u32 {
        ((self.trs_total_bytes / self.num_trs as u64) / self.trs_block_bytes) as u32
    }

    /// Map entries per ORT.
    pub fn entries_per_ort(&self) -> u32 {
        ((self.ort_total_bytes / self.num_ort as u64) / self.ort_entry_bytes) as u32
    }

    /// Sets per ORT (entries / ways), at least 1.
    pub fn sets_per_ort(&self) -> u32 {
        (self.entries_per_ort() / self.ort_ways as u32).max(1)
    }

    /// Version records per OVT.
    pub fn records_per_ovt(&self) -> u32 {
        ((self.ovt_total_bytes / self.num_ort as u64) / self.ovt_entry_bytes) as u32
    }

    /// Total frontend eDRAM in bytes (the paper's "7 MB of on-chip
    /// eDRAM" headline for the default configuration).
    pub fn total_edram_bytes(&self) -> u64 {
        self.trs_total_bytes + self.ort_total_bytes + self.ovt_total_bytes
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate setup (no TRS/ORT, zero capacities, TRS too
    /// small to hold even one maximal task, or more than 256 modules of a
    /// kind — ids are `u8`).
    pub fn validate(&self) {
        assert!(self.num_trs >= 1 && self.num_trs <= 256, "1..=256 TRSs required");
        assert!(self.num_ort >= 1 && self.num_ort <= 256, "1..=256 ORTs required");
        assert!(
            self.blocks_per_trs() >= 4,
            "each TRS must hold at least one maximal task (4 blocks)"
        );
        assert!(self.entries_per_ort() >= self.ort_ways as u32, "ORT needs at least one set");
        assert!(self.records_per_ovt() >= 2, "OVT needs at least two version records");
        assert!(self.gateway_buffer_bytes >= 64, "gateway buffer unrealistically small");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_operating_point() {
        let c = FrontendConfig::default();
        c.validate();
        assert_eq!(c.num_trs, 8);
        assert_eq!(c.num_ort, 2);
        // 6 MB / 8 TRS / 128 B = 6144 blocks per TRS.
        assert_eq!(c.blocks_per_trs(), 6144);
        // 512 KB / 2 / 16 B = 16384 entries; 1024 sets of 16 ways.
        assert_eq!(c.entries_per_ort(), 16384);
        assert_eq!(c.sets_per_ort(), 1024);
        // 512 KB / 2 / 32 B = 8192 version records.
        assert_eq!(c.records_per_ovt(), 8192);
        // The headline: 7 MB of eDRAM.
        assert_eq!(c.total_edram_bytes(), 7 << 20);
    }

    #[test]
    fn window_capacity_matches_paper_claim() {
        // 6 MB of TRS storage yields a window of 12k–50k tasks
        // (Section VI.B): 49,152 single-block tasks, or 12,288 maximal
        // 4-block tasks.
        let c = FrontendConfig::default();
        let blocks_total = c.blocks_per_trs() as u64 * c.num_trs as u64;
        assert_eq!(blocks_total, 49_152);
        assert_eq!(blocks_total / 4, 12_288);
    }

    #[test]
    #[should_panic(expected = "at least one maximal task")]
    fn tiny_trs_rejected() {
        let c = FrontendConfig {
            trs_total_bytes: 128 * 3, // 3 blocks only
            num_trs: 1,
            ..FrontendConfig::default()
        };
        c.validate();
    }

    #[test]
    fn timing_defaults_match_table_two() {
        let t = TimingParams::default();
        assert_eq!(t.edram_latency, 22);
        assert_eq!(t.packet_cost, 16);
    }
}
