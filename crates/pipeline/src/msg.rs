//! The asynchronous point-to-point protocol (paper, Figures 6–9), plus
//! the backend messages (ready queue / cores) and the software-runtime
//! decoder messages, so every simulator in the workspace shares one
//! message type.

use crate::ids::{OperandRef, TaskRef, VersionRef};
use tss_trace::{Direction, TaskId};

/// Which of an inout operand's two required readies a `DataReady`
/// message satisfies (paper, Figure 9: "the operand needs to receive two
/// data ready messages").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyKind {
    /// The input data is in place (producer finished, or data already in
    /// memory).
    Input,
    /// The output buffer is free (previous version drained, or a fresh
    /// rename buffer was allocated).
    Output,
}

/// All messages exchanged between simulation components.
#[derive(Debug, Clone)]
pub enum Msg {
    // ------------------------------------------------------------------
    // Task-generating thread <-> gateway
    // ------------------------------------------------------------------
    /// The generating thread wrote one packed task into the gateway's
    /// incoming buffer.
    SubmitTask {
        /// Index in the shared trace.
        trace_id: TaskId,
    },
    /// Gateway -> generator: buffer space freed; submit more.
    GatewayCredit {
        /// Bytes now free in the incoming buffer.
        free_bytes: u64,
    },
    /// Self-message: the generating thread finished packing its next task.
    GeneratorTick,

    // ------------------------------------------------------------------
    // Gateway internals
    // ------------------------------------------------------------------
    /// Self-message: process the next buffered task / pending work.
    GatewayWork,

    // ------------------------------------------------------------------
    // Gateway <-> TRS (allocation, Figure 6)
    // ------------------------------------------------------------------
    /// "alloc task with N operands" — includes the gateway-buffer address
    /// so the reply avoids an associative lookup (Section IV.B.1).
    AllocTask {
        /// Trace task to allocate.
        trace_id: TaskId,
        /// Number of operands (determines block count).
        operand_count: u8,
        /// Gateway-internal buffer address, echoed in the reply.
        gw_buf: u32,
    },
    /// "use slot S" or a rejection when the TRS is out of blocks.
    AllocReply {
        /// The allocated task id, if space was available.
        task: Option<TaskRef>,
        /// Echoed trace id.
        trace_id: TaskId,
        /// Echoed gateway buffer address.
        gw_buf: u32,
        /// Which TRS answered.
        trs: u8,
    },
    /// TRS -> gateway: blocks were freed; the TRS can take allocations
    /// again.
    TrsHasSpace {
        /// Which TRS has space.
        trs: u8,
    },

    // ------------------------------------------------------------------
    // Gateway -> ORT (operand distribution)
    // ------------------------------------------------------------------
    /// Decode one memory operand (Figures 7–9).
    DecodeOperand {
        /// The operand's id.
        op: OperandRef,
        /// Base address of the memory object.
        addr: u64,
        /// Object size in bytes.
        size: u32,
        /// Directionality.
        dir: Direction,
    },
    /// Self-message: ORT/OVT pair processes the next queued packet.
    OrtWork,
    /// ORT -> gateway: the module blocked (full set / OVT exhausted);
    /// stop issuing new tasks.
    OrtStalled {
        /// Which ORT stalled.
        ort: u8,
    },
    /// ORT -> gateway: unblocked.
    OrtResumed {
        /// Which ORT resumed.
        ort: u8,
    },

    // ------------------------------------------------------------------
    // Gateway -> TRS (scalars bypass the ORTs)
    // ------------------------------------------------------------------
    /// A scalar operand: no dependency tracking, immediately ready.
    ScalarOperand {
        /// The operand's id.
        op: OperandRef,
    },

    // ------------------------------------------------------------------
    // ORT -> TRS
    // ------------------------------------------------------------------
    /// Basic operand information: "operand <1,17,0> is 512B [@283]";
    /// carries the data producer to register with, if any.
    OperandInfo {
        /// The operand this describes.
        op: OperandRef,
        /// Object size in bytes.
        size: u32,
        /// Previous user of the object (consumer-chaining target); `None`
        /// when the object has no in-flight user.
        producer: Option<OperandRef>,
        /// The version this operand uses (for release on task finish).
        version: VersionRef,
        /// How many `DataReady`s this operand needs (1, or 2 for inout).
        readies_needed: u8,
    },

    // ------------------------------------------------------------------
    // OVT/TRS -> TRS (data readiness)
    // ------------------------------------------------------------------
    /// "data ready for <op> @buffer".
    DataReady {
        /// The operand that becomes (half-)ready.
        op: OperandRef,
        /// Where the data lives (rename buffer or original address).
        buffer: u64,
        /// Input-side or output-side readiness.
        kind: ReadyKind,
    },

    // ------------------------------------------------------------------
    // TRS <-> TRS (consumer chaining, Figures 8 and 10)
    // ------------------------------------------------------------------
    /// "register consumer of <producer op>".
    RegisterConsumer {
        /// The operand whose data is consumed (chain predecessor).
        producer: OperandRef,
        /// The consuming operand to notify.
        consumer: OperandRef,
    },

    // ------------------------------------------------------------------
    // TRS -> OVT (on task finish)
    // ------------------------------------------------------------------
    /// Decrement the usage count of a version.
    ReleaseUse {
        /// The version one of the finished task's operands used.
        version: VersionRef,
    },

    // ------------------------------------------------------------------
    // TRS -> backend, backend -> TRS
    // ------------------------------------------------------------------
    /// All operands ready: push the task into the ready queue.
    TaskReady {
        /// In-flight id (so completion can be routed back).
        task: TaskRef,
        /// Trace id (for the runtime to look up).
        trace_id: TaskId,
    },
    /// A core finished executing the task.
    TaskFinished {
        /// The in-flight task that completed.
        task: TaskRef,
    },

    // ------------------------------------------------------------------
    // Backend internals
    // ------------------------------------------------------------------
    /// Self-message: a core completes its current task.
    CoreDone {
        /// Which core.
        core: usize,
        /// In-flight id (meaningful for the hardware pipeline).
        task: Option<TaskRef>,
        /// Trace id.
        trace_id: TaskId,
    },

    // ------------------------------------------------------------------
    // Software-runtime decoder (tss-runtime)
    // ------------------------------------------------------------------
    /// Self-message: the software decoder finished decoding one task.
    SoftDecoded {
        /// Trace id of the decoded task.
        trace_id: TaskId,
    },
    /// Backend -> software decoder: a task finished on a core.
    SoftTaskFinished {
        /// Trace id of the finished task.
        trace_id: TaskId,
    },
}
