//! Frontend assembly: wires generator, gateway, TRSs, and ORT/OVT pairs
//! into a [`Simulation`], with a pluggable execution backend.
//!
//! The real CMP backend (ready queue + cores + ring) lives in
//! `tss-backend`; [`instant_backend`] is an idealized backend with one
//! core per task and zero dispatch latency, useful for isolating the
//! frontend (e.g. the decode-rate experiments of Figures 12–13 use a
//! large backend so decode, not execution, is the bottleneck).

use std::sync::Arc;

use tss_sim::{Component, ComponentStore, Context, Cycle, Extract, Insert, Simulation};
use tss_trace::{ScheduleRecord, TaskTrace};

use crate::config::FrontendConfig;
use crate::gateway::{Gateway, Generator, Topology};
use crate::msg::Msg;
use crate::ortovt::{OrtOvt, OrtOvtStats};
use crate::trs::Trs;

/// What a component store must support to host (and report on) the
/// frontend modules. `tss-sim`'s boxed [`tss_sim::DynStore`] satisfies
/// this via its blanket impls; `tss-core`'s monomorphized `SystemStore`
/// implements it with direct enum variants (no boxing, no `Any`).
pub trait FrontendStore:
    ComponentStore<Msg>
    + Insert<Generator>
    + Insert<Gateway>
    + Insert<Trs>
    + Insert<OrtOvt>
    + Extract<Generator>
    + Extract<Gateway>
    + Extract<Trs>
    + Extract<OrtOvt>
{
}

impl<S> FrontendStore for S where
    S: ComponentStore<Msg>
        + Insert<Generator>
        + Insert<Gateway>
        + Insert<Trs>
        + Insert<OrtOvt>
        + Extract<Generator>
        + Extract<Gateway>
        + Extract<Trs>
        + Extract<OrtOvt>
{
}

/// Builds the frontend and backend into `sim`; returns the routing table.
///
/// Component ids are assigned in a fixed order (generator, gateway,
/// TRSs, ORTs, backend) so the [`Topology`] can be constructed up front.
/// The initial generator kick is scheduled automatically. The backend is
/// whatever concrete component `make_backend` produces, as long as the
/// store can hold it.
///
/// # Panics
///
/// Panics if `cfg` is invalid (see [`FrontendConfig::validate`]) or if
/// `sim` already contains components.
pub fn build_frontend<S, B>(
    sim: &mut Simulation<Msg, S>,
    trace: Arc<TaskTrace>,
    cfg: &FrontendConfig,
    make_backend: impl FnOnce(Arc<TaskTrace>, Topology) -> B,
) -> Topology
where
    S: FrontendStore + Insert<B>,
{
    let thread_of = Arc::new(vec![0u8; trace.len()]);
    build_frontend_threaded(sim, trace, cfg, thread_of, make_backend)
}

/// The Section III.B extension: multiple task-generating threads over a
/// data-partitioned trace. `thread_of[i]` names the thread emitting task
/// `i`; each thread's tasks decode in that thread's program order, and
/// the gateway buffer is split evenly between threads.
///
/// # Panics
///
/// Panics if the partition is not data-disjoint (an enforced dependency
/// crosses threads): in-order decode is only guaranteed per thread, so a
/// cross-thread dependency could be decoded backwards (the paper's
/// correctness argument requires partitioned data).
pub fn build_frontend_threaded<S, B>(
    sim: &mut Simulation<Msg, S>,
    trace: Arc<TaskTrace>,
    cfg: &FrontendConfig,
    thread_of: Arc<Vec<u8>>,
    make_backend: impl FnOnce(Arc<TaskTrace>, Topology) -> B,
) -> Topology
where
    S: FrontendStore + Insert<B>,
{
    cfg.validate();
    assert_eq!(sim.component_count(), 0, "build_frontend needs a fresh simulation");
    assert_eq!(thread_of.len(), trace.len(), "one thread tag per task");
    let threads = thread_of.iter().map(|&t| t as usize + 1).max().unwrap_or(1);
    if threads > 1 {
        // Verify the data partition: no enforced dependency may cross
        // threads (Section III.B).
        let graph = trace.dep_graph();
        for e in graph.edges() {
            if e.kind.enforced() {
                assert_eq!(
                    thread_of[e.from_id()],
                    thread_of[e.to_id()],
                    "dependency {} -> {} crosses generating threads: data must be partitioned",
                    e.from,
                    e.to
                );
            }
        }
    }

    let mut next = 0usize;
    let mut take = || {
        let id = tss_sim::ComponentId::from_index(next);
        next += 1;
        id
    };
    let topo = Topology {
        generators: (0..threads).map(|_| take()).collect(),
        gateway: take(),
        trs: (0..cfg.num_trs).map(|_| take()).collect(),
        ort: (0..cfg.num_ort).map(|_| take()).collect(),
        backend: take(),
    };

    let credit_share = cfg.gateway_buffer_bytes / threads as u64;
    for (th, &want) in topo.generators.iter().enumerate() {
        let ids: Vec<usize> = (0..trace.len()).filter(|&i| thread_of[i] as usize == th).collect();
        let g = Generator::with_partition(
            trace.clone(),
            cfg,
            topo.clone(),
            Arc::new(ids),
            credit_share,
        );
        let id = sim.add(g);
        assert_eq!(id, want);
    }
    let id = sim.add(Gateway::with_threads(trace.clone(), cfg, topo.clone(), thread_of));
    assert_eq!(id, topo.gateway);
    for (i, &want) in topo.trs.iter().enumerate() {
        let id = sim.add(Trs::new(i as u8, trace.clone(), cfg, topo.clone()));
        assert_eq!(id, want);
    }
    for (i, &want) in topo.ort.iter().enumerate() {
        let id = sim.add(OrtOvt::new(i as u8, cfg, topo.clone()));
        assert_eq!(id, want);
    }
    let id = sim.add(make_backend(trace.clone(), topo.clone()));
    assert_eq!(id, topo.backend);

    if !trace.is_empty() {
        for &g in &topo.generators {
            sim.schedule(0, g, Msg::GatewayCredit { free_bytes: 0 });
        }
    }
    topo
}

/// An idealized backend: every ready task starts immediately on its own
/// core and completes after its trace runtime. Records the schedule.
pub struct InstantBackend {
    trace: Arc<TaskTrace>,
    topo: Topology,
    schedule: Vec<ScheduleRecord>,
    next_core: usize,
    completed: u64,
}

impl InstantBackend {
    /// Creates the backend.
    pub fn new(trace: Arc<TaskTrace>, topo: Topology) -> Self {
        InstantBackend { trace, topo, schedule: Vec::new(), next_core: 0, completed: 0 }
    }

    /// The execution schedule (one record per completed task).
    pub fn schedule(&self) -> &[ScheduleRecord] {
        &self.schedule
    }

    /// Tasks completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

impl Component<Msg> for InstantBackend {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::TaskReady { task, trace_id } => {
                let rt = self.trace.task(trace_id).runtime;
                let core = self.next_core;
                self.next_core += 1;
                self.schedule.push(ScheduleRecord {
                    task: trace_id,
                    start: ctx.now(),
                    end: ctx.now() + rt,
                    core,
                });
                let me = ctx.self_id();
                ctx.send(me, rt, Msg::CoreDone { core, task: Some(task), trace_id });
            }
            Msg::CoreDone { task, .. } => {
                self.completed += 1;
                let task = task.expect("hardware pipeline tasks carry a TaskRef");
                ctx.send(self.topo.trs[task.trs as usize], 1, Msg::TaskFinished { task });
            }
            other => panic!("instant backend received unexpected message {other:?}"),
        }
    }
}

/// Factory for [`InstantBackend`] matching [`build_frontend`]'s signature.
pub fn instant_backend(trace: Arc<TaskTrace>, topo: Topology) -> InstantBackend {
    InstantBackend::new(trace, topo)
}

/// Aggregated post-run frontend statistics.
#[derive(Debug, Clone)]
pub struct FrontendStats {
    /// Tasks fully decoded (added to the task graph).
    pub tasks_decoded: u64,
    /// Mean cycles between successive additions to the task graph — the
    /// paper's decode-rate metric (Figures 12–13).
    pub decode_rate_cycles: f64,
    /// Peak in-flight tasks across all TRSs (achieved window size).
    pub window_peak: u32,
    /// `DataReady` forwards along consumer chains.
    pub chain_forwards: u64,
    /// Registers answered from recycled slots.
    pub stale_registers: u64,
    /// Mean internal fragmentation of TRS task storage (Figure 11's
    /// "average waste ~20 %").
    pub avg_storage_waste: f64,
    /// Allocation requests bounced off a full TRS.
    pub allocs_rejected: u64,
    /// Cycles the generating thread stalled on a full gateway buffer.
    pub generator_stalled: Cycle,
    /// Cycles the gateway was paused by ORT stalls.
    pub gateway_stalled: Cycle,
    /// Summed ORT/OVT counters.
    pub ort: OrtOvtStats,
    /// Live state left after the run (must be 0 on a drained run).
    pub leaked_tasks: u64,
}

/// Extracts aggregated statistics after a run.
pub fn frontend_stats<S: FrontendStore>(
    sim: &Simulation<Msg, S>,
    topo: &Topology,
    _cfg: &FrontendConfig,
) -> FrontendStats {
    let mut decode_times: Vec<Cycle> = Vec::new();
    let mut window_peak = 0u32;
    let mut chain_forwards = 0u64;
    let mut stale_registers = 0u64;
    let mut waste_sum = 0.0f64;
    let mut tasks = 0u64;
    let mut allocs_rejected = 0u64;
    let mut leaked = 0u64;
    for &id in &topo.trs {
        let trs = sim.component::<Trs>(id);
        let st = trs.stats();
        decode_times.extend(&st.decode_times);
        window_peak += st.peak_in_flight;
        chain_forwards += st.chain_forwards;
        stale_registers += st.stale_registers;
        waste_sum += st.waste_sum;
        tasks += st.tasks_allocated;
        allocs_rejected += st.allocs_rejected;
        leaked += trs.in_flight() as u64;
    }
    let mut ort = OrtOvtStats::default();
    for &id in &topo.ort {
        let o = sim.component::<OrtOvt>(id);
        let s = o.stats();
        ort.lookups += s.lookups;
        ort.hits += s.hits;
        ort.versions_created += s.versions_created;
        ort.renames += s.renames;
        ort.copybacks += s.copybacks;
        ort.copyback_bytes += s.copyback_bytes;
        ort.blocked_cycles += s.blocked_cycles;
        ort.blocks += s.blocks;
        ort.peak_entries += s.peak_entries;
        ort.peak_records += s.peak_records;
        for (acc, v) in ort.chain_hist.iter_mut().zip(s.chain_hist.iter()) {
            *acc += v;
        }
        leaked += o.live_entries() as u64;
    }
    let decoded = decode_times.len() as u64;
    let decode_rate = if decode_times.len() >= 2 {
        let min = *decode_times.iter().min().expect("non-empty");
        let max = *decode_times.iter().max().expect("non-empty");
        (max - min) as f64 / (decode_times.len() - 1) as f64
    } else {
        0.0
    };
    let gateway = sim.component::<Gateway>(topo.gateway);
    let generator_stalled: Cycle =
        topo.generators.iter().map(|&g| sim.component::<Generator>(g).stalled_cycles()).sum();
    FrontendStats {
        tasks_decoded: decoded,
        decode_rate_cycles: decode_rate,
        window_peak,
        chain_forwards,
        stale_registers,
        avg_storage_waste: if tasks == 0 { 0.0 } else { waste_sum / tasks as f64 },
        allocs_rejected,
        generator_stalled,
        gateway_stalled: gateway.stalled_cycles(),
        ort,
        leaked_tasks: leaked,
    }
}
