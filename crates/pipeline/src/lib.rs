//! The task superscalar frontend (paper, Section IV): an out-of-order
//! pipeline operating at the task level.
//!
//! A sequential task-generating thread feeds tasks to a [`Gateway`];
//! operands are decoded by [`OrtOvt`] pairs (object renaming tables +
//! object versioning tables) that detect dependencies by object base
//! address, rename outputs to break WaR/WaW, and serialize inout chains;
//! in-flight task meta-data lives in [`Trs`] modules whose consumer
//! chains embed the dependency graph. Ready tasks are pushed to an
//! execution backend that treats processors as functional units.
//!
//! The protocol (Figures 6–9), storage layouts (Figure 11), consumer
//! chaining (Figure 10), and timing (Table II: 22-cycle eDRAM, 16-cycle
//! packet processing) follow the paper; see `DESIGN.md` for the few
//! modeling simplifications and why they are behavior-preserving.
//!
//! # Assembling a frontend
//!
//! Use [`assembly::build_frontend`] with any backend component (the real
//! CMP backend lives in `tss-backend`; tests may use a mock):
//!
//! ```
//! use std::sync::Arc;
//! use tss_pipeline::{assembly, FrontendConfig, Msg};
//! use tss_sim::Simulation;
//! use tss_trace::{OperandDesc, TaskTrace};
//!
//! let mut trace = TaskTrace::new("demo");
//! let k = trace.add_kernel("kern");
//! trace.push_task(k, 1_000, vec![OperandDesc::output(0x1000, 512)]);
//! trace.push_task(k, 1_000, vec![OperandDesc::input(0x1000, 512)]);
//!
//! let mut sim = Simulation::<Msg>::new();
//! let cfg = FrontendConfig::default();
//! let topo = assembly::build_frontend(
//!     &mut sim,
//!     Arc::new(trace),
//!     &cfg,
//!     assembly::instant_backend,
//! );
//! sim.run();
//! let stats = assembly::frontend_stats(&sim, &topo, &cfg);
//! assert_eq!(stats.tasks_decoded, 2);
//! ```

#![forbid(unsafe_code)]

pub mod assembly;
pub mod blocks;
pub mod config;
pub mod gateway;
pub mod ids;
pub mod msg;
pub mod ortovt;
pub mod trs;

pub use config::{FrontendConfig, TimingParams};
pub use gateway::{Gateway, Generator, Topology};
pub use ids::{OperandRef, TaskRef, VersionRef};
pub use msg::{Msg, ReadyKind};
pub use ortovt::OrtOvt;
pub use trs::Trs;
