//! The pipeline gateway and the task-generating thread (paper, Section
//! IV.B.1).
//!
//! The **generator** models the decoupled task-generating thread: it
//! packs one task at a time (base + per-operand cost) and writes it into
//! the gateway's 1 KB incoming buffer, stalling when the buffer is full —
//! "the thread is only stalled when the task window becomes [full]".
//!
//! The **gateway**:
//!
//! - keeps a queue of TRSs with free space and sends each new task an
//!   allocation request (non-blocking: it "can continue sending
//!   allocation requests for newly arrived tasks while waiting for TRS
//!   replies");
//! - on an allocation reply, issues the task's operands to the ORTs
//!   (selected by hashed base address, to avoid load imbalance) and
//!   scalars directly to the allocated TRS;
//! - pauses while any ORT reports a stall (full set / exhausted OVT) and
//!   resumes when all clear.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use tss_sim::{Component, ComponentId, Context, Cycle, ServerTimeline, SplitMix64};
use tss_trace::{OperandKind, TaskId, TaskTrace};

use crate::config::{FrontendConfig, TimingParams};
use crate::ids::{OperandRef, TaskRef};
use crate::msg::Msg;

/// Routing table of the assembled frontend (component ids are assigned
/// in a fixed order by the assembler).
#[derive(Debug, Clone)]
pub struct Topology {
    /// The task-generating threads (one in the paper's main design;
    /// Section III.B sketches the data-partitioned multi-thread
    /// extension, which this reproduction implements).
    pub generators: Vec<ComponentId>,
    /// The pipeline gateway.
    pub gateway: ComponentId,
    /// TRS modules, by TRS index.
    pub trs: Vec<ComponentId>,
    /// ORT/OVT pairs, by ORT index.
    pub ort: Vec<ComponentId>,
    /// The execution backend (ready queue + cores).
    pub backend: ComponentId,
}

/// Bytes one packed task occupies in the gateway buffer: kernel pointer
/// and globals (16 B) plus one 16 B record per operand. A 1 KB buffer
/// thus "holds over 20 incoming tasks" of 2–3 operands.
pub fn task_packet_bytes(operands: usize) -> u64 {
    16 + 16 * operands as u64
}

/// Picks the ORT for a memory object: the base address is hashed so that
/// object size variation does not imbalance the ORTs (Section IV.B.1).
pub fn ort_for_addr(addr: u64, num_ort: usize) -> usize {
    (SplitMix64::new(addr).next_u64() % num_ort as u64) as usize
}

/// One task-generating thread: walks its own partition of the trace in
/// program order, packing one task at a time into its share of the
/// gateway buffer.
pub struct Generator {
    trace: Arc<TaskTrace>,
    timing: TimingParams,
    topo: Topology,
    /// The tasks this thread emits, in program order.
    ids: Arc<Vec<TaskId>>,
    next: usize,
    credit_bytes: u64,
    packing: bool,
    stalled_since: Option<Cycle>,
    stalled_cycles: Cycle,
    finished_at: Option<Cycle>,
}

impl Generator {
    /// Creates the single generator of the base design, with the full
    /// gateway buffer as credit.
    pub fn new(trace: Arc<TaskTrace>, cfg: &FrontendConfig, topo: Topology) -> Self {
        let ids = Arc::new((0..trace.len()).collect());
        Self::with_partition(trace, cfg, topo, ids, cfg.gateway_buffer_bytes)
    }

    /// Creates a generator emitting only `ids` (a data partition), with
    /// `credit_bytes` of gateway buffer reserved for it.
    pub fn with_partition(
        trace: Arc<TaskTrace>,
        cfg: &FrontendConfig,
        topo: Topology,
        ids: Arc<Vec<TaskId>>,
        credit_bytes: u64,
    ) -> Self {
        Generator {
            trace,
            timing: cfg.timing.clone(),
            topo,
            ids,
            next: 0,
            credit_bytes,
            packing: false,
            stalled_since: None,
            stalled_cycles: 0,
            finished_at: None,
        }
    }

    /// Cycles spent stalled on a full gateway buffer.
    pub fn stalled_cycles(&self) -> Cycle {
        self.stalled_cycles
    }

    /// When the last task was submitted, if the trace is exhausted.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    fn pack_cost(&self, id: TaskId) -> Cycle {
        self.timing.task_gen_base
            + self.timing.task_gen_per_operand * self.trace.task(id).operands.len() as Cycle
    }

    fn try_start_packing(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.packing || self.next >= self.ids.len() {
            return;
        }
        let id = self.ids[self.next];
        let bytes = task_packet_bytes(self.trace.task(id).operands.len());
        if bytes > self.credit_bytes {
            // Buffer full: stall until the gateway frees space.
            if self.stalled_since.is_none() {
                self.stalled_since = Some(ctx.now());
            }
            return;
        }
        if let Some(since) = self.stalled_since.take() {
            self.stalled_cycles += ctx.now() - since;
        }
        self.credit_bytes -= bytes;
        self.packing = true;
        let me = ctx.self_id();
        ctx.send(me, self.pack_cost(id), Msg::GeneratorTick);
    }
}

impl Component<Msg> for Generator {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::GeneratorTick => {
                debug_assert!(self.packing, "tick without packing");
                self.packing = false;
                let id = self.ids[self.next];
                self.next += 1;
                ctx.send(
                    self.topo.gateway,
                    self.timing.frontend_hop,
                    Msg::SubmitTask { trace_id: id },
                );
                if self.next >= self.ids.len() {
                    self.finished_at = Some(ctx.now());
                }
                self.try_start_packing(ctx);
            }
            Msg::GatewayCredit { free_bytes } => {
                self.credit_bytes += free_bytes;
                self.try_start_packing(ctx);
            }
            other => panic!("generator received unexpected message {other:?}"),
        }
    }
}

/// The pipeline gateway.
pub struct Gateway {
    trace: Arc<TaskTrace>,
    cfg: FrontendConfig,
    topo: Topology,
    server: ServerTimeline,
    /// TRSs currently believed to have free space, in rotation order.
    trs_queue: VecDeque<u8>,
    trs_full: Vec<bool>,
    /// Tasks waiting for a TRS with space, retried oldest-first so the
    /// window cannot be monopolized by younger tasks that are themselves
    /// waiting (in program order) on the starved one.
    pending_alloc: BTreeSet<TaskId>,
    /// Allocated tasks whose operands have not been issued yet, indexed
    /// densely by trace id (two hot map operations per task replaced by
    /// two array accesses). Operand issue MUST follow per-thread program
    /// order (the in-order decode requirement, Section III.B):
    /// allocation replies arrive out of order from differently-loaded
    /// TRSs, so issue is re-serialized here.
    issuable: Vec<Option<TaskRef>>,
    /// Which generating thread emitted each task.
    thread_of: Arc<Vec<u8>>,
    /// Per-thread program order of task ids.
    thread_order: Vec<Vec<TaskId>>,
    /// Per-thread cursor into `thread_order`: the next task whose
    /// operands may be issued.
    issue_next: Vec<usize>,
    stalled_orts: usize,
    stall_started: Option<Cycle>,
    stalled_cycles: Cycle,
    tasks_in: u64,
    allocs_retried: u64,
}

impl Gateway {
    /// Creates the gateway for the single-threaded base design.
    pub fn new(trace: Arc<TaskTrace>, cfg: &FrontendConfig, topo: Topology) -> Self {
        let thread_of = Arc::new(vec![0u8; trace.len()]);
        Self::with_threads(trace, cfg, topo, thread_of)
    }

    /// Creates the gateway for `thread_of.max()+1` generating threads;
    /// per-thread program order is preserved through decode.
    pub fn with_threads(
        trace: Arc<TaskTrace>,
        cfg: &FrontendConfig,
        topo: Topology,
        thread_of: Arc<Vec<u8>>,
    ) -> Self {
        assert_eq!(thread_of.len(), trace.len(), "one thread tag per task");
        let threads = thread_of.iter().map(|&t| t as usize + 1).max().unwrap_or(1);
        let mut thread_order: Vec<Vec<TaskId>> = vec![Vec::new(); threads];
        for (id, &t) in thread_of.iter().enumerate() {
            thread_order[t as usize].push(id);
        }
        Gateway {
            issuable: vec![None; trace.len()],
            trace,
            cfg: cfg.clone(),
            trs_queue: (0..cfg.num_trs as u8).collect(),
            trs_full: vec![false; cfg.num_trs],
            topo,
            server: ServerTimeline::new(),
            pending_alloc: BTreeSet::new(),
            thread_of,
            issue_next: vec![0; threads],
            thread_order,
            stalled_orts: 0,
            stall_started: None,
            stalled_cycles: 0,
            tasks_in: 0,
            allocs_retried: 0,
        }
    }

    /// Cycles the gateway spent paused by ORT stalls.
    pub fn stalled_cycles(&self) -> Cycle {
        self.stalled_cycles
    }

    /// Tasks accepted from the generator.
    pub fn tasks_in(&self) -> u64 {
        self.tasks_in
    }

    /// Allocation requests that had to be re-sent because a TRS was full.
    pub fn allocs_retried(&self) -> u64 {
        self.allocs_retried
    }

    /// Gateway busy cycles (for utilization reporting).
    pub fn busy_cycles(&self) -> Cycle {
        self.server.busy_cycles()
    }

    fn send_alloc(&mut self, trace_id: TaskId, ctx: &mut Context<'_, Msg>) {
        let Some(&trs) = self.trs_queue.front() else {
            self.pending_alloc.insert(trace_id);
            return;
        };
        // Rotate for round-robin load spreading.
        self.trs_queue.rotate_left(1);
        let done = self.server.occupy(ctx.now(), self.cfg.timing.packet_cost);
        let ops = self.trace.task(trace_id).operands.len() as u8;
        ctx.send_at(
            self.topo.trs[trs as usize],
            done + self.cfg.timing.frontend_hop,
            Msg::AllocTask { trace_id, operand_count: ops, gw_buf: trace_id as u32 },
        );
    }

    fn issue_operands(&mut self, task: TaskRef, trace_id: TaskId, ctx: &mut Context<'_, Msg>) {
        let t = self.trace.task(trace_id);
        for (i, op) in t.operands.iter().enumerate() {
            let done = self.server.occupy(ctx.now(), self.cfg.timing.packet_cost);
            let op_ref = OperandRef { task, index: i as u8 };
            match op.kind {
                OperandKind::Memory => {
                    let ort = ort_for_addr(op.addr, self.cfg.num_ort);
                    ctx.send_at(
                        self.topo.ort[ort],
                        done + self.cfg.timing.frontend_hop,
                        Msg::DecodeOperand {
                            op: op_ref,
                            addr: op.addr,
                            size: op.size,
                            dir: op.dir,
                        },
                    );
                }
                OperandKind::Scalar => {
                    // Scalars go straight to the TRS (Section IV.A).
                    ctx.send_at(
                        self.topo.trs[task.trs as usize],
                        done + self.cfg.timing.frontend_hop,
                        Msg::ScalarOperand { op: op_ref },
                    );
                }
            }
        }
        // The buffer entry is recycled once the operands are on the wire;
        // the credit returns to the thread that emitted the task.
        let freed = task_packet_bytes(t.operands.len());
        let gen = self.topo.generators[self.thread_of[trace_id] as usize];
        ctx.send(gen, self.cfg.timing.frontend_hop, Msg::GatewayCredit { free_bytes: freed });
    }

    /// Retries parked allocations, oldest first, while a TRS has space.
    fn retry_parked(&mut self, ctx: &mut Context<'_, Msg>) {
        while !self.trs_queue.is_empty() {
            let Some(&tid) = self.pending_alloc.iter().next() else { break };
            self.pending_alloc.remove(&tid);
            self.send_alloc(tid, ctx);
        }
    }

    /// Issues operands for every allocated task that is next in its
    /// thread's program order, unless an ORT stall pauses the gateway.
    fn try_issue(&mut self, ctx: &mut Context<'_, Msg>) {
        let mut progressed = true;
        while progressed && self.stalled_orts == 0 {
            progressed = false;
            for th in 0..self.thread_order.len() {
                while self.stalled_orts == 0 {
                    let Some(&head) = self.thread_order[th].get(self.issue_next[th]) else {
                        break;
                    };
                    let Some(task) = self.issuable[head].take() else { break };
                    self.issue_next[th] += 1;
                    progressed = true;
                    self.issue_operands(task, head, ctx);
                }
            }
        }
    }
}

impl Component<Msg> for Gateway {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::SubmitTask { trace_id } => {
                self.tasks_in += 1;
                if self.pending_alloc.is_empty() {
                    self.send_alloc(trace_id, ctx);
                } else {
                    // Older tasks are starving for window space: queue
                    // behind them (allocation stays in program order).
                    self.pending_alloc.insert(trace_id);
                }
            }
            Msg::AllocReply { task, trace_id, gw_buf: _, trs } => match task {
                Some(task) => {
                    self.issuable[trace_id] = Some(task);
                    self.try_issue(ctx);
                }
                None => {
                    // That TRS is out of blocks: remove it from rotation
                    // and retry (oldest parked task first).
                    self.allocs_retried += 1;
                    if !self.trs_full[trs as usize] {
                        self.trs_full[trs as usize] = true;
                        self.trs_queue.retain(|&t| t != trs);
                    }
                    self.pending_alloc.insert(trace_id);
                    self.retry_parked(ctx);
                }
            },
            Msg::TrsHasSpace { trs } => {
                if self.trs_full[trs as usize] {
                    self.trs_full[trs as usize] = false;
                    self.trs_queue.push_back(trs);
                }
                self.retry_parked(ctx);
            }
            Msg::OrtStalled { ort: _ } => {
                if self.stalled_orts == 0 {
                    self.stall_started = Some(ctx.now());
                }
                self.stalled_orts += 1;
            }
            Msg::OrtResumed { ort: _ } => {
                debug_assert!(self.stalled_orts > 0, "resume without stall");
                self.stalled_orts -= 1;
                if self.stalled_orts == 0 {
                    if let Some(s) = self.stall_started.take() {
                        self.stalled_cycles += ctx.now() - s;
                    }
                    self.try_issue(ctx);
                }
            }
            other => panic!("gateway received unexpected message {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_bytes_hold_twenty_tasks_per_kb() {
        // 2-operand tasks: 48 B each -> 21 fit in 1 KB.
        assert_eq!(task_packet_bytes(2), 48);
        assert!(1024 / task_packet_bytes(2) >= 20);
    }

    #[test]
    fn ort_hash_spreads_consecutive_addresses() {
        // Consecutive 64 KB blocks must not all land on ORT 0.
        let hits: Vec<usize> =
            (0..16u64).map(|i| ort_for_addr(0x10_0000 + i * 0x1_0000, 4)).collect();
        let distinct: std::collections::HashSet<_> = hits.iter().collect();
        assert!(distinct.len() >= 3, "hash must spread: {hits:?}");
    }

    #[test]
    fn ort_hash_is_deterministic_and_in_range() {
        for n in [1usize, 2, 4, 8] {
            for a in [0u64, 64, 4096, u64::MAX] {
                let x = ort_for_addr(a, n);
                assert_eq!(x, ort_for_addr(a, n));
                assert!(x < n);
            }
        }
    }
}
