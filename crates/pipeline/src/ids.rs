//! Identifiers used by the frontend protocol.
//!
//! The paper (Section IV.A): "Each task is ... represented by a unique
//! task ID tuple composed of the TRS index and the slot number", e.g.
//! `<1,17>`; operand IDs append the operand index, e.g. `<1,17,0>`.
//! TRSs are directly addressed — "protocol messages include the location
//! of the queried datum in the destination module" — so these refs are
//! physical addresses, not associative keys.
//!
//! We add a *generation* counter to task and version refs: slots and
//! version records are recycled, and a message carrying a stale
//! generation proves its target already finished/drained (the receiver
//! then answers "data ready" immediately instead of dereferencing freed
//! state). Hardware gets the same effect from its release protocol; in a
//! simulator the generation check also turns any lifetime bug into a loud
//! failure instead of silent corruption.

/// Identifies an in-flight task: `<TRS index, slot, generation>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskRef {
    /// Which TRS stores the task.
    pub trs: u8,
    /// Slot (main-block address) within that TRS.
    pub slot: u32,
    /// Slot reuse generation.
    pub gen: u32,
}

impl std::fmt::Display for TaskRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{},{}>", self.trs, self.slot)
    }
}

/// Identifies one operand of an in-flight task: `<TRS, slot, index>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandRef {
    /// The owning task.
    pub task: TaskRef,
    /// Operand index within the task.
    pub index: u8,
}

impl std::fmt::Display for OperandRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{},{},{}>", self.task.trs, self.task.slot, self.index)
    }
}

/// Identifies a live operand version in an OVT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VersionRef {
    /// Which OVT (== its paired ORT index) owns the version.
    pub ovt: u8,
    /// Record index within that OVT.
    pub idx: u32,
    /// Record reuse generation.
    pub gen: u32,
}

impl std::fmt::Display for VersionRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v<{},{}>", self.ovt, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let t = TaskRef { trs: 1, slot: 17, gen: 0 };
        assert_eq!(t.to_string(), "<1,17>");
        let o = OperandRef { task: t, index: 0 };
        assert_eq!(o.to_string(), "<1,17,0>");
    }

    #[test]
    fn generations_distinguish_reuse() {
        let a = TaskRef { trs: 0, slot: 5, gen: 0 };
        let b = TaskRef { trs: 0, slot: 5, gen: 1 };
        assert_ne!(a, b);
    }
}
