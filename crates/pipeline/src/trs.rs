//! Task Reservation Stations (paper, Section IV.B.2).
//!
//! A TRS stores the meta-data of in-flight tasks in its private eDRAM
//! (128 B blocks, inode layout — see [`crate::blocks`]) and thereby
//! *embeds the task dependency graph*: each operand records at most one
//! chained consumer (Figure 10), producers notify the first consumer on
//! task finish, and every consumer forwards the `DataReady` to its
//! successor on receipt.
//!
//! TRSs are directly addressed — incoming messages carry the task slot —
//! so no associative lookup is needed. Slot reuse is guarded by
//! generation counters: a `RegisterConsumer` that reaches a recycled slot
//! proves the producer already finished, so the consumer is answered
//! "data ready" immediately.
//!
//! # Host data layout (ISSUE 5, DESIGN.md §9.1)
//!
//! Task slots live in a dense `Vec<SlotEntry>` indexed by slot id (the
//! id *is* the task's main block index, handed out low-first by
//! [`BlockStore`] and bounded by the configured block count). Every hot
//! message resolves to exactly one slot + one operand, so the layout is
//! tuned for that access: the generation counter lives *inside* the
//! entry (not a parallel array — one random access, not two), the first
//! [`INLINE_OPS`] operands are stored inline (no heap hop behind a
//! dependent pointer load), and each operand's chained consumer is an
//! inline `Option` (a `Vec` spill exists only for the no-chaining
//! ablation). Slots are recycled **in place**: a finished task bumps the
//! generation and clears the live flag; nothing is moved, dropped, or
//! reallocated on the steady-state path.

use std::sync::Arc;

use tss_sim::{Component, Context, Cycle, ServerTimeline};
use tss_trace::{Direction, OperandKind, TaskId, TaskTrace};

use crate::blocks::{blocks_for_operands, BlockStore};
use crate::config::FrontendConfig;
use crate::gateway::Topology;
use crate::ids::{OperandRef, TaskRef, VersionRef};
use crate::msg::{Msg, ReadyKind};

/// Operands stored inline in the slot entry. Eight covers nearly every
/// task of all nine Table-I benchmarks including H264's >6-operand
/// macroblocks (measured: 8 beats 4 on H264 with no regression
/// elsewhere); wider tasks spill to a per-slot `Vec` whose capacity is
/// recycled with the slot. The value trades operand-lookup locality
/// against slot footprint.
const INLINE_OPS: usize = 8;

#[derive(Debug, Clone)]
struct OperandSlot {
    dir: Direction,
    is_scalar: bool,
    version: Option<VersionRef>,
    /// Chained consumer (Figure 10): with consumer chaining at most one
    /// exists (the ORT always points newcomers at the last user), stored
    /// inline. The no-chaining ablation's longer lists overflow to the
    /// TRS-level side table (`Trs::overflow_consumers`) so the hot
    /// operand stays small.
    consumer: Option<OperandRef>,
    /// Whether this operand has overflow consumers in the side table.
    consumer_overflow: bool,
    /// The "producer" was an earlier operand of the same task: the data
    /// this operand stands for is produced by its own task, so chain
    /// forwarding must wait for task finish (like a writer).
    self_produced: bool,
    data_ready: bool,
    buffer: u64,
    readies_needed: u8,
    readies_got: u8,
    info_received: bool,
}

impl OperandSlot {
    fn empty() -> Self {
        OperandSlot {
            dir: Direction::In,
            is_scalar: false,
            version: None,
            consumer: None,
            consumer_overflow: false,
            self_produced: false,
            data_ready: false,
            buffer: 0,
            readies_needed: 0,
            readies_got: 0,
            info_received: false,
        }
    }

    /// Resets for a fresh task. The caller clears any overflow list
    /// (recycled slots cannot carry one: overflow only outlives a task
    /// in the no-chaining ablation, and is purged on task finish).
    fn reset(&mut self, dir: Direction, is_scalar: bool) {
        self.dir = dir;
        self.is_scalar = is_scalar;
        self.version = None;
        self.consumer = None;
        debug_assert!(!self.consumer_overflow, "overflow must be purged on finish");
        self.self_produced = false;
        self.data_ready = false;
        self.buffer = 0;
        self.readies_needed = 0;
        self.readies_got = 0;
        self.info_received = false;
    }
}

/// Decode lifecycle of a slot. The paper's intermediate "ready" state
/// (decoded, waiting in the ready queue) lives in the backend's queuing
/// system; inside the TRS a task goes straight from decoding to running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Decoding,
    Running,
}

#[derive(Debug)]
struct TaskSlot {
    trace_id: TaskId,
    /// Occupied block ids, inline: the inode layout caps a task at 4
    /// blocks, so no per-task heap allocation is needed.
    blocks: [u32; 4],
    block_count: u8,
    op_len: u8,
    infos_pending: u8,
    /// Operands still waiting for readies (`readies_got <
    /// readies_needed`), maintained incrementally so readiness checks
    /// are O(1) instead of rescanning every operand per message.
    unready_ops: u8,
    state: SlotState,
    decode_done: Option<Cycle>,
    /// The first `INLINE_OPS` operands, in place.
    ops: [OperandSlot; INLINE_OPS],
    /// Operands `INLINE_OPS..op_len` (rare; capacity recycled).
    ops_spill: Vec<OperandSlot>,
}

impl TaskSlot {
    fn empty() -> Self {
        TaskSlot {
            trace_id: 0,
            blocks: [0; 4],
            block_count: 0,
            op_len: 0,
            infos_pending: 0,
            unready_ops: 0,
            state: SlotState::Decoding,
            decode_done: None,
            ops: std::array::from_fn(|_| OperandSlot::empty()),
            ops_spill: Vec::new(),
        }
    }

    #[inline]
    fn op(&self, i: usize) -> &OperandSlot {
        if i < INLINE_OPS {
            &self.ops[i]
        } else {
            &self.ops_spill[i - INLINE_OPS]
        }
    }

    #[inline]
    fn op_mut(&mut self, i: usize) -> &mut OperandSlot {
        if i < INLINE_OPS {
            &mut self.ops[i]
        } else {
            &mut self.ops_spill[i - INLINE_OPS]
        }
    }

    fn ops_iter(&self) -> impl Iterator<Item = &OperandSlot> {
        let inline = (self.op_len as usize).min(INLINE_OPS);
        self.ops[..inline].iter().chain(self.ops_spill.iter())
    }

    /// O(1) readiness test (the full scan survives as a debug check).
    fn all_ready(&self) -> bool {
        debug_assert_eq!(
            self.unready_ops == 0,
            self.ops_iter().all(|o| o.readies_got >= o.readies_needed),
            "unready_ops counter out of sync"
        );
        self.infos_pending == 0 && self.unready_ops == 0
    }
}

/// One dense slot entry: generation + live flag + in-place task storage.
/// Everything a hot message needs is behind a single indexed access.
struct SlotEntry {
    gen: u32,
    live: bool,
    task: TaskSlot,
}

impl SlotEntry {
    fn empty() -> Self {
        SlotEntry { gen: 0, live: false, task: TaskSlot::empty() }
    }
}

/// Counters exported after a run.
///
/// Cache-line-aligned for the same reason as
/// [`OrtOvtStats`](crate::ortovt::OrtOvtStats): per-module counter
/// blocks must not share lines across modules (ISSUE 4 satellite).
#[derive(Debug, Clone, Default)]
#[repr(align(128))]
pub struct TrsStats {
    /// Tasks allocated in this TRS.
    pub tasks_allocated: u64,
    /// Allocation requests rejected for lack of blocks.
    pub allocs_rejected: u64,
    /// Peak simultaneously in-flight tasks (window occupancy share).
    pub peak_in_flight: u32,
    /// `DataReady` messages forwarded along consumer chains.
    pub chain_forwards: u64,
    /// `RegisterConsumer` messages answered from a recycled slot
    /// (producer had already finished).
    pub stale_registers: u64,
    /// Fraction-of-storage-wasted samples (internal fragmentation), one
    /// per allocated task.
    pub waste_sum: f64,
    /// Decode completion timestamps ("additions to the task graph").
    pub decode_times: Vec<Cycle>,
}

/// One task reservation station.
pub struct Trs {
    index: u8,
    trace: Arc<TaskTrace>,
    timing: crate::config::TimingParams,
    chaining: bool,
    block_bytes: u64,
    topo: Topology,
    store: BlockStore,
    slots: Vec<SlotEntry>,
    /// Consumers beyond each operand's inline slot, keyed by
    /// `(slot, operand)`. Populated only by the no-chaining ablation
    /// (with chaining an operand has at most one consumer), so the hot
    /// layout never pays for the list.
    overflow_consumers: std::collections::HashMap<(u32, u8), Vec<OperandRef>>,
    server: ServerTimeline,
    reported_full: bool,
    in_flight: u32,
    stats: TrsStats,
}

impl Trs {
    /// Builds TRS `index`.
    pub fn new(index: u8, trace: Arc<TaskTrace>, cfg: &FrontendConfig, topo: Topology) -> Self {
        let blocks = cfg.blocks_per_trs();
        Trs {
            index,
            trace,
            timing: cfg.timing.clone(),
            chaining: cfg.chaining,
            block_bytes: cfg.trs_block_bytes,
            topo,
            store: BlockStore::new(blocks, cfg.timing.edram_latency),
            slots: Vec::new(),
            overflow_consumers: std::collections::HashMap::new(),
            server: ServerTimeline::new(),
            reported_full: false,
            in_flight: 0,
            stats: TrsStats::default(),
        }
    }

    /// Post-run statistics.
    pub fn stats(&self) -> &TrsStats {
        &self.stats
    }

    /// Module busy cycles.
    pub fn busy_cycles(&self) -> Cycle {
        self.server.busy_cycles()
    }

    /// Tasks currently in flight (0 after a drained run).
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// The block store (for post-run inspection).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The live task in `slot`, if any.
    fn slot(&mut self, slot: u32) -> Option<&mut TaskSlot> {
        match self.slots.get_mut(slot as usize) {
            Some(e) if e.live => Some(&mut e.task),
            _ => None,
        }
    }

    /// The slot entry for a directly-addressed message, with the
    /// release-mode generation check every such message must pass
    /// (stale-slot delivery is a protocol bug, never noise).
    #[inline]
    fn live_entry(&mut self, slot: u32, gen: u32, what: &str) -> &mut TaskSlot {
        let e = &mut self.slots[slot as usize];
        assert!(e.live && e.gen == gen, "{what} addressed a recycled slot");
        &mut e.task
    }

    /// Grows the dense vector up to the slot id (which `BlockStore`
    /// bounds by capacity) and returns the entry for (re)initialization.
    fn entry_for_install(&mut self, slot: u32) -> &mut SlotEntry {
        let i = slot as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, SlotEntry::empty);
        }
        debug_assert!(!self.slots[i].live, "slot {slot} double-allocated");
        &mut self.slots[i]
    }

    fn occupy(&mut self, now: Cycle, cost: Cycle) -> Cycle {
        self.server.occupy(now, cost)
    }

    fn check_ready(&mut self, slot: u32, at: Cycle, ctx: &mut Context<'_, Msg>) {
        // Copy the send parameters first so the slot is looked up and
        // borrowed exactly once (this runs once per frontend message).
        let backend = self.topo.backend;
        let hop = self.timing.frontend_hop;
        let trs = self.index;
        let Some(e) = self.slots.get_mut(slot as usize).filter(|e| e.live) else { return };
        let task = TaskRef { trs, slot, gen: e.gen };
        let s = &mut e.task;
        if s.state == SlotState::Decoding && s.all_ready() {
            s.state = SlotState::Running;
            let trace_id = s.trace_id;
            // Push into the ready queue (the backend's queuing system).
            ctx.send_at(backend, at + hop, Msg::TaskReady { task, trace_id });
        }
    }

    /// Handles a `DataReady` for `op` at service completion `at`.
    ///
    /// This is the hottest frontend handler (one per ready notification,
    /// plus chain traffic): a single slot access resolves generation,
    /// task header, and the operand, and sibling fields (`stats`,
    /// `topo`, `timing`) stay accessible through disjoint field borrows.
    fn apply_data_ready(
        &mut self,
        op: OperandRef,
        buffer: u64,
        kind: ReadyKind,
        at: Cycle,
        ctx: &mut Context<'_, Msg>,
    ) {
        debug_assert_eq!(op.task.trs, self.index, "DataReady routed to the wrong TRS");
        let hop = self.timing.frontend_hop;
        let e = &mut self.slots[op.task.slot as usize];
        assert!(
            e.live && e.gen == op.task.gen,
            "DataReady for a recycled slot: operands must be ready before a task finishes"
        );
        let s = &mut e.task;
        let o = s.op_mut(op.index as usize);
        o.readies_got += 1;
        debug_assert!(
            o.readies_got <= o.readies_needed.max(1),
            "operand {op} received more readies than needed"
        );
        // Crossing from waiting to satisfied retires this operand from
        // the slot's incremental unready count (a `readies_needed` of 0
        // never registered, so only an exact crossing decrements).
        let crossed = o.readies_needed > 0 && o.readies_got == o.readies_needed;
        let mut forward = false;
        if kind == ReadyKind::Input {
            o.data_ready = true;
            o.buffer = buffer;
            // Readers forward along the chain on receipt (Figure 10);
            // writers (and self-produced readers) notify their consumer
            // only when the task finishes.
            forward = !o.dir.writes() && !o.self_produced;
        } else if o.buffer == 0 {
            o.buffer = buffer;
        }
        if crossed {
            debug_assert!(s.unready_ops > 0, "unready_ops underflow");
            s.unready_ops -= 1;
        }
        if forward {
            let o = s.op(op.index as usize);
            let overflow = o.consumer_overflow;
            if let Some(next) = o.consumer {
                self.stats.chain_forwards += 1;
                ctx.send_at(
                    self.topo.trs[next.task.trs as usize],
                    at + hop,
                    Msg::DataReady { op: next, buffer, kind: ReadyKind::Input },
                );
            }
            if overflow {
                // No-chaining ablation: the rest of the list lives in
                // the side table.
                if let Some(rest) = self.overflow_consumers.get(&(op.task.slot, op.index)) {
                    for next in rest {
                        self.stats.chain_forwards += 1;
                        ctx.send_at(
                            self.topo.trs[next.task.trs as usize],
                            at + hop,
                            Msg::DataReady { op: *next, buffer, kind: ReadyKind::Input },
                        );
                    }
                }
            }
        }
        // Inline readiness check: the chain forwards above must precede
        // the TaskReady in the queue (FIFO determinism).
        if s.state == SlotState::Decoding && s.all_ready() {
            s.state = SlotState::Running;
            let trace_id = s.trace_id;
            ctx.send_at(self.topo.backend, at + hop, Msg::TaskReady { task: op.task, trace_id });
        }
    }
}

impl Component<Msg> for Trs {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let hop = self.timing.frontend_hop;
        match msg {
            // --------------------------------------------------- Figure 6
            Msg::AllocTask { trace_id, operand_count, gw_buf } => {
                let need = blocks_for_operands(operand_count as usize);
                let reply_to = self.topo.gateway;
                let mut blocks = [0u32; 4];
                if let Some(cost_cycles) = self.store.alloc_into(&mut blocks[..need as usize]) {
                    // Packet processing + allocation (SRAM/eDRAM) + main
                    // block initialization.
                    let cost = self.timing.packet_cost + cost_cycles + self.timing.edram_latency;
                    let t = self.occupy(ctx.now(), cost);
                    let slot = blocks[0];
                    let index = self.index;
                    // Local handle so the task borrow stays disjoint
                    // from the slot-entry borrow below.
                    let trace = Arc::clone(&self.trace);
                    let task = trace.task(trace_id);
                    let waste =
                        crate::blocks::fragmentation_waste(task.operands.len(), self.block_bytes);
                    self.stats.waste_sum += waste;
                    self.stats.tasks_allocated += 1;
                    self.in_flight += 1;
                    self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
                    // In-place (re)initialization: reset exactly the
                    // operands this task uses; spare spill capacity (and
                    // each consumer list's allocation) survives churn.
                    let op_len = task.operands.len();
                    let e = self.entry_for_install(slot);
                    e.live = true;
                    let s = &mut e.task;
                    s.trace_id = trace_id;
                    s.blocks = blocks;
                    s.block_count = need as u8;
                    s.op_len = op_len as u8;
                    s.infos_pending = op_len as u8;
                    s.unready_ops = 0;
                    s.state = SlotState::Decoding;
                    s.decode_done = None;
                    s.ops_spill.truncate(op_len.saturating_sub(INLINE_OPS));
                    for (i, od) in task.operands.iter().enumerate() {
                        let is_scalar = od.kind == OperandKind::Scalar;
                        if i < INLINE_OPS {
                            s.ops[i].reset(od.dir, is_scalar);
                        } else if let Some(o) = s.ops_spill.get_mut(i - INLINE_OPS) {
                            o.reset(od.dir, is_scalar);
                        } else {
                            let mut o = OperandSlot::empty();
                            o.dir = od.dir;
                            o.is_scalar = is_scalar;
                            s.ops_spill.push(o);
                        }
                    }
                    let task_ref = TaskRef { trs: index, slot, gen: e.gen };
                    ctx.send_at(
                        reply_to,
                        t + hop,
                        Msg::AllocReply { task: Some(task_ref), trace_id, gw_buf, trs: index },
                    );
                    // Zero-operand tasks are ready the moment they decode.
                    if op_len == 0 {
                        let s = self.slot(slot).expect("just installed");
                        s.decode_done = Some(t);
                        self.stats.decode_times.push(t);
                        self.check_ready(slot, t, ctx);
                    }
                } else {
                    self.stats.allocs_rejected += 1;
                    self.reported_full = true;
                    let t = self.occupy(ctx.now(), self.timing.packet_cost);
                    ctx.send_at(
                        reply_to,
                        t + hop,
                        Msg::AllocReply { task: None, trace_id, gw_buf, trs: self.index },
                    );
                }
            }

            // ------------------------------------------------ scalar path
            Msg::ScalarOperand { op } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost);
                let s = self.live_entry(op.task.slot, op.task.gen, "scalar");
                let o = s.op_mut(op.index as usize);
                debug_assert!(o.is_scalar, "scalar message for a memory operand");
                debug_assert!(!o.info_received, "duplicate scalar for {op}");
                o.info_received = true;
                o.data_ready = true;
                s.infos_pending -= 1;
                if s.infos_pending == 0 {
                    s.decode_done = Some(t);
                    self.stats.decode_times.push(t);
                }
                // A scalar can complete the decode of an otherwise
                // satisfied task (one message per scalar operand — not
                // hot enough to justify inlining the readiness check).
                self.check_ready(op.task.slot, t, ctx);
            }

            // ----------------------------------------------- Figures 7–9
            Msg::OperandInfo { op, size: _, producer, version, readies_needed } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                let self_task = op.task;
                let s = self.live_entry(op.task.slot, op.task.gen, "OperandInfo");
                {
                    let o = s.op_mut(op.index as usize);
                    debug_assert!(!o.info_received, "duplicate OperandInfo for {op}");
                    debug_assert_eq!(o.readies_got, 0, "ready before OperandInfo for {op}");
                    o.info_received = true;
                    o.version = Some(version);
                    o.readies_needed = readies_needed;
                }
                if readies_needed > 0 {
                    s.unready_ops += 1;
                }
                s.infos_pending -= 1;
                if s.infos_pending == 0 {
                    s.decode_done = Some(t);
                    self.stats.decode_times.push(t);
                }
                match producer {
                    Some(p) if p.task == self_task => {
                        // The previous user is an earlier operand of this
                        // very task: no self-dependency; the data this
                        // task observes is its own — input side is ready,
                        // but consumers chained here must wait for the
                        // task to finish (they read ITS product).
                        let s = self.slot(op.task.slot).expect("live slot");
                        s.op_mut(op.index as usize).self_produced = true;
                        self.apply_data_ready(op, 0, ReadyKind::Input, t, ctx);
                    }
                    Some(p) => {
                        ctx.send_at(
                            self.topo.trs[p.task.trs as usize],
                            t + hop,
                            Msg::RegisterConsumer { producer: p, consumer: op },
                        );
                    }
                    None => {}
                }
                // No readiness check: an OperandInfo always carries
                // `readies_needed >= 1` and no ready can precede the info
                // (asserted above), so this operand is now waiting and
                // the task cannot become runnable here. Readiness fires
                // from DataReady / ScalarOperand / zero-operand alloc.
            }

            // -------------------------------------- Figures 8 and 10
            Msg::RegisterConsumer { producer, consumer } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                let stale = match self.slots.get(producer.task.slot as usize) {
                    Some(e) => !e.live || e.gen != producer.task.gen,
                    None => true,
                };
                if stale {
                    // The producing task finished and its slot was
                    // recycled: its data is long since in memory.
                    self.stats.stale_registers += 1;
                    ctx.send_at(
                        self.topo.trs[consumer.task.trs as usize],
                        t + hop,
                        Msg::DataReady { op: consumer, buffer: 0, kind: ReadyKind::Input },
                    );
                } else {
                    let s = &mut self.slots[producer.task.slot as usize].task;
                    let o = s.op_mut(producer.index as usize);
                    if !o.dir.writes() && !o.self_produced && o.data_ready {
                        // A reader that already has its data forwards
                        // immediately.
                        self.stats.chain_forwards += 1;
                        let buffer = o.buffer;
                        ctx.send_at(
                            self.topo.trs[consumer.task.trs as usize],
                            t + hop,
                            Msg::DataReady { op: consumer, buffer, kind: ReadyKind::Input },
                        );
                    } else {
                        debug_assert!(
                            self.chaining || o.dir.writes() || o.self_produced,
                            "with chaining, readers forward instead of accumulating"
                        );
                        if o.consumer.is_none() && !o.consumer_overflow {
                            o.consumer = Some(consumer);
                        } else {
                            // Only the no-chaining ablation grows a list
                            // (the ORT forwards the last user otherwise).
                            debug_assert!(!self.chaining, "an operand chains at most one consumer");
                            o.consumer_overflow = true;
                            self.overflow_consumers
                                .entry((producer.task.slot, producer.index))
                                .or_default()
                                .push(consumer);
                        }
                    }
                }
            }

            // ------------------------------------------------- readiness
            Msg::DataReady { op, buffer, kind } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                self.apply_data_ready(op, buffer, kind, t, ctx);
            }

            // ----------------------------------------------- task finish
            Msg::TaskFinished { task } => {
                {
                    let e = &self.slots[task.slot as usize];
                    assert!(e.live && e.gen == task.gen, "finish for stale slot");
                    debug_assert_eq!(
                        e.task.state,
                        SlotState::Running,
                        "finish of a non-running task"
                    );
                }
                // Traverse all operands: one eDRAM access each.
                let op_len = self.slots[task.slot as usize].task.op_len as usize;
                let cost =
                    self.timing.packet_cost + self.timing.edram_latency * op_len.max(1) as Cycle;
                let t = self.occupy(ctx.now(), cost);
                // Field-disjoint borrows: the slot entry is read for the
                // notify loop while `server` (chained notify costs) and
                // the context are written.
                let entry = &mut self.slots[task.slot as usize];
                let s = &entry.task;
                let server = &mut self.server;
                let timing = &self.timing;
                let topo = &self.topo;
                let overflow_consumers = &self.overflow_consumers;
                let mut any_overflow = false;
                for i in 0..op_len {
                    let o = s.op(i);
                    any_overflow |= o.consumer_overflow;
                    if o.dir.writes() || o.self_produced {
                        // The produced data is now ready: notify the first
                        // consumer in the chain (with chaining there is at
                        // most one; the ablation notifies all directly,
                        // paying a packet cost per extra message).
                        let mut t_send = t;
                        if let Some(next) = o.consumer {
                            ctx.send_at(
                                topo.trs[next.task.trs as usize],
                                t_send + hop,
                                Msg::DataReady {
                                    op: next,
                                    buffer: o.buffer,
                                    kind: ReadyKind::Input,
                                },
                            );
                        }
                        if o.consumer_overflow {
                            let rest = overflow_consumers
                                .get(&(task.slot, i as u8))
                                .map(Vec::as_slice)
                                .unwrap_or_default();
                            for next in rest {
                                t_send = server.occupy(t_send, timing.packet_cost);
                                ctx.send_at(
                                    topo.trs[next.task.trs as usize],
                                    t_send + hop,
                                    Msg::DataReady {
                                        op: *next,
                                        buffer: o.buffer,
                                        kind: ReadyKind::Input,
                                    },
                                );
                            }
                        }
                    }
                    if let Some(v) = o.version {
                        ctx.send_at(
                            topo.ort[v.ovt as usize],
                            t + hop,
                            Msg::ReleaseUse { version: v },
                        );
                    }
                }
                let blocks = s.blocks;
                let block_count = s.block_count;
                // Recycle in place: bump the generation, drop liveness.
                // Operand state is re-initialized by the next install;
                // spill/consumer capacities stay with the slot.
                entry.live = false;
                entry.gen += 1;
                if any_overflow {
                    // Ablation-only cleanup: purge side-table lists and
                    // their flags before the slot is reused.
                    let s = &mut entry.task;
                    for i in 0..op_len {
                        let o = s.op_mut(i);
                        if o.consumer_overflow {
                            o.consumer_overflow = false;
                            self.overflow_consumers.remove(&(task.slot, i as u8));
                        }
                    }
                }
                self.store.free(&blocks[..block_count as usize]);
                self.in_flight -= 1;
                if self.reported_full && self.store.can_alloc(4) {
                    self.reported_full = false;
                    ctx.send_at(self.topo.gateway, t + hop, Msg::TrsHasSpace { trs: self.index });
                }
            }

            other => panic!("TRS received unexpected message {other:?}"),
        }
    }
}
