//! Task Reservation Stations (paper, Section IV.B.2).
//!
//! A TRS stores the meta-data of in-flight tasks in its private eDRAM
//! (128 B blocks, inode layout — see [`crate::blocks`]) and thereby
//! *embeds the task dependency graph*: each operand records at most one
//! chained consumer (Figure 10), producers notify the first consumer on
//! task finish, and every consumer forwards the `DataReady` to its
//! successor on receipt.
//!
//! TRSs are directly addressed — incoming messages carry the task slot —
//! so no associative lookup is needed. Slot reuse is guarded by
//! generation counters: a `RegisterConsumer` that reaches a recycled slot
//! proves the producer already finished, so the consumer is answered
//! "data ready" immediately.
//!
//! Task slots live in a dense `Vec` indexed by slot id (the id *is* the
//! task's main block index, handed out low-first by [`BlockStore`] and
//! bounded by the configured block count), so the hot path never hashes;
//! the vector grows once to peak occupancy and is flat thereafter.

use std::sync::Arc;

use tss_sim::{Component, Context, Cycle, ServerTimeline};
use tss_trace::{Direction, OperandKind, TaskId, TaskTrace};

use crate::blocks::{blocks_for_operands, BlockStore};
use crate::config::FrontendConfig;
use crate::gateway::Topology;
use crate::ids::{OperandRef, TaskRef, VersionRef};
use crate::msg::{Msg, ReadyKind};

#[derive(Debug, Clone)]
struct OperandSlot {
    dir: Direction,
    is_scalar: bool,
    version: Option<VersionRef>,
    /// Chained consumers. With consumer chaining (Figure 10) at most one
    /// entry exists (the ORT always points newcomers at the last user);
    /// the no-chaining ablation stores the full list.
    consumers: Vec<OperandRef>,
    /// The "producer" was an earlier operand of the same task: the data
    /// this operand stands for is produced by its own task, so chain
    /// forwarding must wait for task finish (like a writer).
    self_produced: bool,
    data_ready: bool,
    buffer: u64,
    readies_needed: u8,
    readies_got: u8,
    info_received: bool,
}

/// Decode lifecycle of a slot. The paper's intermediate "ready" state
/// (decoded, waiting in the ready queue) lives in the backend's queuing
/// system; inside the TRS a task goes straight from decoding to running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Decoding,
    Running,
}

#[derive(Debug)]
struct TaskSlot {
    trace_id: TaskId,
    /// Occupied block ids, inline: the inode layout caps a task at 4
    /// blocks, so no per-task heap allocation is needed.
    blocks: [u32; 4],
    block_count: u8,
    operands: Vec<OperandSlot>,
    infos_pending: u8,
    /// Operands still waiting for readies (`readies_got <
    /// readies_needed`), maintained incrementally so readiness checks
    /// are O(1) instead of rescanning every operand per message.
    unready_ops: u8,
    state: SlotState,
    decode_done: Option<Cycle>,
}

impl TaskSlot {
    /// O(1) readiness test (the full scan survives as a debug check).
    fn all_ready(&self) -> bool {
        debug_assert_eq!(
            self.unready_ops == 0,
            self.operands.iter().all(|o| o.readies_got >= o.readies_needed),
            "unready_ops counter out of sync"
        );
        self.infos_pending == 0 && self.unready_ops == 0
    }
}

/// Counters exported after a run.
///
/// Cache-line-aligned for the same reason as
/// [`OrtOvtStats`](crate::ortovt::OrtOvtStats): per-module counter
/// blocks must not share lines across modules (ISSUE 4 satellite).
#[derive(Debug, Clone, Default)]
#[repr(align(128))]
pub struct TrsStats {
    /// Tasks allocated in this TRS.
    pub tasks_allocated: u64,
    /// Allocation requests rejected for lack of blocks.
    pub allocs_rejected: u64,
    /// Peak simultaneously in-flight tasks (window occupancy share).
    pub peak_in_flight: u32,
    /// `DataReady` messages forwarded along consumer chains.
    pub chain_forwards: u64,
    /// `RegisterConsumer` messages answered from a recycled slot
    /// (producer had already finished).
    pub stale_registers: u64,
    /// Fraction-of-storage-wasted samples (internal fragmentation), one
    /// per allocated task.
    pub waste_sum: f64,
    /// Decode completion timestamps ("additions to the task graph").
    pub decode_times: Vec<Cycle>,
}

/// One task reservation station.
pub struct Trs {
    index: u8,
    trace: Arc<TaskTrace>,
    timing: crate::config::TimingParams,
    chaining: bool,
    block_bytes: u64,
    topo: Topology,
    store: BlockStore,
    slots: Vec<Option<TaskSlot>>,
    /// Retired operand vectors, recycled into the next allocation so
    /// steady-state decode performs no heap allocation (each recycled
    /// slot also keeps its consumer-list capacity).
    operand_pool: Vec<Vec<OperandSlot>>,
    gens: Vec<u32>,
    server: ServerTimeline,
    reported_full: bool,
    in_flight: u32,
    stats: TrsStats,
}

impl Trs {
    /// Builds TRS `index`.
    pub fn new(index: u8, trace: Arc<TaskTrace>, cfg: &FrontendConfig, topo: Topology) -> Self {
        let blocks = cfg.blocks_per_trs();
        Trs {
            index,
            trace,
            timing: cfg.timing.clone(),
            chaining: cfg.chaining,
            block_bytes: cfg.trs_block_bytes,
            topo,
            store: BlockStore::new(blocks, cfg.timing.edram_latency),
            slots: Vec::new(),
            operand_pool: Vec::new(),
            gens: vec![0; blocks as usize],
            server: ServerTimeline::new(),
            reported_full: false,
            in_flight: 0,
            stats: TrsStats::default(),
        }
    }

    /// Post-run statistics.
    pub fn stats(&self) -> &TrsStats {
        &self.stats
    }

    /// Module busy cycles.
    pub fn busy_cycles(&self) -> Cycle {
        self.server.busy_cycles()
    }

    /// Tasks currently in flight (0 after a drained run).
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// The block store (for post-run inspection).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    fn task_ref(&self, slot: u32) -> TaskRef {
        TaskRef { trs: self.index, slot, gen: self.gens[slot as usize] }
    }

    /// The live task in `slot`, if any.
    fn slot(&mut self, slot: u32) -> Option<&mut TaskSlot> {
        self.slots.get_mut(slot as usize).and_then(Option::as_mut)
    }

    /// Installs a freshly allocated task into `slot` (grows the dense
    /// vector up to the slot id, which `BlockStore` bounds by capacity).
    fn install(&mut self, slot: u32, task: TaskSlot) {
        let i = slot as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        debug_assert!(self.slots[i].is_none(), "slot {slot} double-allocated");
        self.slots[i] = Some(task);
    }

    fn occupy(&mut self, now: Cycle, cost: Cycle) -> Cycle {
        self.server.occupy(now, cost)
    }

    fn check_ready(&mut self, slot: u32, at: Cycle, ctx: &mut Context<'_, Msg>) {
        // Copy the send parameters first so the slot is looked up and
        // borrowed exactly once (this runs once per frontend message).
        let backend = self.topo.backend;
        let hop = self.timing.frontend_hop;
        let task = TaskRef { trs: self.index, slot, gen: self.gens[slot as usize] };
        let Some(s) = self.slots.get_mut(slot as usize).and_then(Option::as_mut) else { return };
        if s.state == SlotState::Decoding && s.all_ready() {
            s.state = SlotState::Running;
            let trace_id = s.trace_id;
            // Push into the ready queue (the backend's queuing system).
            ctx.send_at(backend, at + hop, Msg::TaskReady { task, trace_id });
        }
    }

    /// Handles a `DataReady` for `op` at service completion `at`.
    ///
    /// This is the hottest frontend handler (one per ready notification,
    /// plus chain traffic), so the task slot is borrowed exactly once:
    /// sibling fields (`stats`, `topo`, `timing`) stay accessible through
    /// disjoint field borrows while the slot borrow is live.
    fn apply_data_ready(
        &mut self,
        op: OperandRef,
        buffer: u64,
        kind: ReadyKind,
        at: Cycle,
        ctx: &mut Context<'_, Msg>,
    ) {
        assert_eq!(
            self.gens[op.task.slot as usize], op.task.gen,
            "DataReady for a recycled slot: operands must be ready before a task finishes"
        );
        debug_assert_eq!(op.task.trs, self.index, "DataReady routed to the wrong TRS");
        let hop = self.timing.frontend_hop;
        let s = self.slots[op.task.slot as usize].as_mut().expect("live slot (gen checked)");
        let o = &mut s.operands[op.index as usize];
        o.readies_got += 1;
        debug_assert!(
            o.readies_got <= o.readies_needed.max(1),
            "operand {op} received more readies than needed"
        );
        // Crossing from waiting to satisfied retires this operand from
        // the slot's incremental unready count (a `readies_needed` of 0
        // never registered, so only an exact crossing decrements).
        let crossed = o.readies_needed > 0 && o.readies_got == o.readies_needed;
        let mut forward = false;
        if kind == ReadyKind::Input {
            o.data_ready = true;
            o.buffer = buffer;
            // Readers forward along the chain on receipt (Figure 10);
            // writers (and self-produced readers) notify their consumer
            // only when the task finishes.
            forward = !o.dir.writes() && !o.self_produced;
        } else if o.buffer == 0 {
            o.buffer = buffer;
        }
        if crossed {
            debug_assert!(s.unready_ops > 0, "unready_ops underflow");
            s.unready_ops -= 1;
        }
        if forward {
            for next in &s.operands[op.index as usize].consumers {
                self.stats.chain_forwards += 1;
                ctx.send_at(
                    self.topo.trs[next.task.trs as usize],
                    at + hop,
                    Msg::DataReady { op: *next, buffer, kind: ReadyKind::Input },
                );
            }
        }
        // Inline readiness check: the chain forwards above must precede
        // the TaskReady in the outbox (FIFO determinism).
        if s.state == SlotState::Decoding && s.all_ready() {
            s.state = SlotState::Running;
            let trace_id = s.trace_id;
            ctx.send_at(self.topo.backend, at + hop, Msg::TaskReady { task: op.task, trace_id });
        }
    }
}

impl Component<Msg> for Trs {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let hop = self.timing.frontend_hop;
        match msg {
            // --------------------------------------------------- Figure 6
            Msg::AllocTask { trace_id, operand_count, gw_buf } => {
                let need = blocks_for_operands(operand_count as usize);
                let reply_to = self.topo.gateway;
                let mut blocks = [0u32; 4];
                if let Some(cost_cycles) = self.store.alloc_into(&mut blocks[..need as usize]) {
                    // Packet processing + allocation (SRAM/eDRAM) + main
                    // block initialization.
                    let cost = self.timing.packet_cost + cost_cycles + self.timing.edram_latency;
                    let t = self.occupy(ctx.now(), cost);
                    let slot = blocks[0];
                    let task = self.trace.task(trace_id);
                    // Refill a recycled operand vector in place: its
                    // spare capacity (and each slot's consumer-list
                    // allocation) survives task churn.
                    let mut operands = self.operand_pool.pop().unwrap_or_default();
                    operands.truncate(task.operands.len());
                    for (i, od) in task.operands.iter().enumerate() {
                        let is_scalar = od.kind == OperandKind::Scalar;
                        if let Some(o) = operands.get_mut(i) {
                            o.dir = od.dir;
                            o.is_scalar = is_scalar;
                            o.version = None;
                            o.consumers.clear();
                            o.self_produced = false;
                            o.data_ready = false;
                            o.buffer = 0;
                            o.readies_needed = 0;
                            o.readies_got = 0;
                            o.info_received = false;
                        } else {
                            operands.push(OperandSlot {
                                dir: od.dir,
                                is_scalar,
                                version: None,
                                consumers: Vec::new(),
                                self_produced: false,
                                data_ready: false,
                                buffer: 0,
                                readies_needed: 0,
                                readies_got: 0,
                                info_received: false,
                            });
                        }
                    }
                    let waste =
                        crate::blocks::fragmentation_waste(operands.len(), self.block_bytes);
                    self.stats.waste_sum += waste;
                    self.stats.tasks_allocated += 1;
                    self.in_flight += 1;
                    self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
                    let infos_pending = operands.len() as u8;
                    self.install(
                        slot,
                        TaskSlot {
                            trace_id,
                            blocks,
                            block_count: need as u8,
                            operands,
                            infos_pending,
                            unready_ops: 0,
                            state: SlotState::Decoding,
                            decode_done: None,
                        },
                    );
                    let task_ref = self.task_ref(slot);
                    ctx.send_at(
                        reply_to,
                        t + hop,
                        Msg::AllocReply { task: Some(task_ref), trace_id, gw_buf, trs: self.index },
                    );
                    // Zero-operand tasks are ready the moment they decode.
                    if let Some(s) = self.slot(slot) {
                        if s.infos_pending == 0 {
                            s.decode_done = Some(t);
                            self.stats.decode_times.push(t);
                            self.check_ready(slot, t, ctx);
                        }
                    }
                } else {
                    self.stats.allocs_rejected += 1;
                    self.reported_full = true;
                    let t = self.occupy(ctx.now(), self.timing.packet_cost);
                    ctx.send_at(
                        reply_to,
                        t + hop,
                        Msg::AllocReply { task: None, trace_id, gw_buf, trs: self.index },
                    );
                }
            }

            // ------------------------------------------------ scalar path
            Msg::ScalarOperand { op } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost);
                assert_eq!(self.gens[op.task.slot as usize], op.task.gen, "scalar to stale slot");
                let s = self.slots[op.task.slot as usize].as_mut().expect("live slot");
                let o = &mut s.operands[op.index as usize];
                debug_assert!(o.is_scalar, "scalar message for a memory operand");
                debug_assert!(!o.info_received, "duplicate scalar for {op}");
                o.info_received = true;
                o.data_ready = true;
                s.infos_pending -= 1;
                if s.infos_pending == 0 {
                    s.decode_done = Some(t);
                    self.stats.decode_times.push(t);
                }
                // A scalar can complete the decode of an otherwise
                // satisfied task (one message per scalar operand — not
                // hot enough to justify inlining the readiness check).
                self.check_ready(op.task.slot, t, ctx);
            }

            // ----------------------------------------------- Figures 7–9
            Msg::OperandInfo { op, size: _, producer, version, readies_needed } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                assert_eq!(self.gens[op.task.slot as usize], op.task.gen, "info to stale slot");
                let self_task = op.task;
                let s = self.slot(op.task.slot).expect("live slot");
                {
                    let o = &mut s.operands[op.index as usize];
                    debug_assert!(!o.info_received, "duplicate OperandInfo for {op}");
                    debug_assert_eq!(o.readies_got, 0, "ready before OperandInfo for {op}");
                    o.info_received = true;
                    o.version = Some(version);
                    o.readies_needed = readies_needed;
                }
                if readies_needed > 0 {
                    s.unready_ops += 1;
                }
                s.infos_pending -= 1;
                if s.infos_pending == 0 {
                    s.decode_done = Some(t);
                    self.stats.decode_times.push(t);
                }
                match producer {
                    Some(p) if p.task == self_task => {
                        // The previous user is an earlier operand of this
                        // very task: no self-dependency; the data this
                        // task observes is its own — input side is ready,
                        // but consumers chained here must wait for the
                        // task to finish (they read ITS product).
                        let s = self.slot(op.task.slot).expect("live slot");
                        s.operands[op.index as usize].self_produced = true;
                        self.apply_data_ready(op, 0, ReadyKind::Input, t, ctx);
                    }
                    Some(p) => {
                        ctx.send_at(
                            self.topo.trs[p.task.trs as usize],
                            t + hop,
                            Msg::RegisterConsumer { producer: p, consumer: op },
                        );
                    }
                    None => {}
                }
                // No readiness check: an OperandInfo always carries
                // `readies_needed >= 1` and no ready can precede the info
                // (asserted above), so this operand is now waiting and
                // the task cannot become runnable here. Readiness fires
                // from DataReady / ScalarOperand / zero-operand alloc.
            }

            // -------------------------------------- Figures 8 and 10
            Msg::RegisterConsumer { producer, consumer } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                let stale = self.gens[producer.task.slot as usize] != producer.task.gen
                    || !matches!(self.slots.get(producer.task.slot as usize), Some(Some(_)));
                if stale {
                    // The producing task finished and its slot was
                    // recycled: its data is long since in memory.
                    self.stats.stale_registers += 1;
                    ctx.send_at(
                        self.topo.trs[consumer.task.trs as usize],
                        t + hop,
                        Msg::DataReady { op: consumer, buffer: 0, kind: ReadyKind::Input },
                    );
                } else {
                    let s = self.slots[producer.task.slot as usize].as_mut().expect("checked");
                    let o = &mut s.operands[producer.index as usize];
                    if !o.dir.writes() && !o.self_produced && o.data_ready {
                        // A reader that already has its data forwards
                        // immediately.
                        self.stats.chain_forwards += 1;
                        let buffer = o.buffer;
                        ctx.send_at(
                            self.topo.trs[consumer.task.trs as usize],
                            t + hop,
                            Msg::DataReady { op: consumer, buffer, kind: ReadyKind::Input },
                        );
                    } else {
                        debug_assert!(
                            self.chaining || o.dir.writes() || o.self_produced,
                            "with chaining, readers forward instead of accumulating"
                        );
                        debug_assert!(
                            !self.chaining || o.consumers.is_empty(),
                            "an operand chains at most one consumer (ORT forwards the last user)"
                        );
                        o.consumers.push(consumer);
                    }
                }
            }

            // ------------------------------------------------- readiness
            Msg::DataReady { op, buffer, kind } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                self.apply_data_ready(op, buffer, kind, t, ctx);
            }

            // ----------------------------------------------- task finish
            Msg::TaskFinished { task } => {
                assert_eq!(self.gens[task.slot as usize], task.gen, "finish for stale slot");
                let s = self
                    .slots
                    .get_mut(task.slot as usize)
                    .and_then(Option::take)
                    .expect("live slot");
                debug_assert_eq!(s.state, SlotState::Running, "finish of a non-running task");
                // Traverse all operands: one eDRAM access each.
                let cost = self.timing.packet_cost
                    + self.timing.edram_latency * s.operands.len().max(1) as Cycle;
                let t = self.occupy(ctx.now(), cost);
                for o in &s.operands {
                    if o.dir.writes() || o.self_produced {
                        // The produced data is now ready: notify the first
                        // consumer in the chain (with chaining there is at
                        // most one; the ablation notifies all directly,
                        // paying a packet cost per extra message).
                        let mut t_send = t;
                        for (i, next) in o.consumers.iter().enumerate() {
                            if i > 0 {
                                t_send = self.server.occupy(t_send, self.timing.packet_cost);
                            }
                            ctx.send_at(
                                self.topo.trs[next.task.trs as usize],
                                t_send + hop,
                                Msg::DataReady {
                                    op: *next,
                                    buffer: o.buffer,
                                    kind: ReadyKind::Input,
                                },
                            );
                        }
                    }
                    if let Some(v) = o.version {
                        ctx.send_at(
                            self.topo.ort[v.ovt as usize],
                            t + hop,
                            Msg::ReleaseUse { version: v },
                        );
                    }
                }
                self.store.free(&s.blocks[..s.block_count as usize]);
                self.operand_pool.push(s.operands);
                self.gens[task.slot as usize] += 1;
                self.in_flight -= 1;
                if self.reported_full && self.store.can_alloc(4) {
                    self.reported_full = false;
                    ctx.send_at(self.topo.gateway, t + hop, Msg::TrsHasSpace { trs: self.index });
                }
            }

            other => panic!("TRS received unexpected message {other:?}"),
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
