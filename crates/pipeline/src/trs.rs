//! Task Reservation Stations (paper, Section IV.B.2).
//!
//! A TRS stores the meta-data of in-flight tasks in its private eDRAM
//! (128 B blocks, inode layout — see [`crate::blocks`]) and thereby
//! *embeds the task dependency graph*: each operand records at most one
//! chained consumer (Figure 10), producers notify the first consumer on
//! task finish, and every consumer forwards the `DataReady` to its
//! successor on receipt.
//!
//! TRSs are directly addressed — incoming messages carry the task slot —
//! so no associative lookup is needed. Slot reuse is guarded by
//! generation counters: a `RegisterConsumer` that reaches a recycled slot
//! proves the producer already finished, so the consumer is answered
//! "data ready" immediately.

use std::collections::HashMap;
use std::sync::Arc;

use tss_sim::{Component, Context, Cycle, ServerTimeline};
use tss_trace::{Direction, OperandKind, TaskId, TaskTrace};

use crate::blocks::{blocks_for_operands, BlockStore};
use crate::config::FrontendConfig;
use crate::gateway::Topology;
use crate::ids::{OperandRef, TaskRef, VersionRef};
use crate::msg::{Msg, ReadyKind};

#[derive(Debug, Clone)]
struct OperandSlot {
    dir: Direction,
    is_scalar: bool,
    version: Option<VersionRef>,
    /// Chained consumers. With consumer chaining (Figure 10) at most one
    /// entry exists (the ORT always points newcomers at the last user);
    /// the no-chaining ablation stores the full list.
    consumers: Vec<OperandRef>,
    /// The "producer" was an earlier operand of the same task: the data
    /// this operand stands for is produced by its own task, so chain
    /// forwarding must wait for task finish (like a writer).
    self_produced: bool,
    data_ready: bool,
    buffer: u64,
    readies_needed: u8,
    readies_got: u8,
    info_received: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Decoding,
    Ready,
    Running,
}

#[derive(Debug)]
struct TaskSlot {
    trace_id: TaskId,
    blocks: Vec<u32>,
    operands: Vec<OperandSlot>,
    infos_pending: u8,
    state: SlotState,
    decode_done: Option<Cycle>,
}

impl TaskSlot {
    fn all_ready(&self) -> bool {
        self.infos_pending == 0 && self.operands.iter().all(|o| o.readies_got >= o.readies_needed)
    }
}

/// Counters exported after a run.
#[derive(Debug, Clone, Default)]
pub struct TrsStats {
    /// Tasks allocated in this TRS.
    pub tasks_allocated: u64,
    /// Allocation requests rejected for lack of blocks.
    pub allocs_rejected: u64,
    /// Peak simultaneously in-flight tasks (window occupancy share).
    pub peak_in_flight: u32,
    /// `DataReady` messages forwarded along consumer chains.
    pub chain_forwards: u64,
    /// `RegisterConsumer` messages answered from a recycled slot
    /// (producer had already finished).
    pub stale_registers: u64,
    /// Fraction-of-storage-wasted samples (internal fragmentation), one
    /// per allocated task.
    pub waste_sum: f64,
    /// Decode completion timestamps ("additions to the task graph").
    pub decode_times: Vec<Cycle>,
}

/// One task reservation station.
pub struct Trs {
    index: u8,
    trace: Arc<TaskTrace>,
    timing: crate::config::TimingParams,
    chaining: bool,
    block_bytes: u64,
    topo: Topology,
    store: BlockStore,
    slots: HashMap<u32, TaskSlot>,
    gens: Vec<u32>,
    server: ServerTimeline,
    reported_full: bool,
    in_flight: u32,
    stats: TrsStats,
}

impl Trs {
    /// Builds TRS `index`.
    pub fn new(index: u8, trace: Arc<TaskTrace>, cfg: &FrontendConfig, topo: Topology) -> Self {
        let blocks = cfg.blocks_per_trs();
        Trs {
            index,
            trace,
            timing: cfg.timing.clone(),
            chaining: cfg.chaining,
            block_bytes: cfg.trs_block_bytes,
            topo,
            store: BlockStore::new(blocks, cfg.timing.edram_latency),
            slots: HashMap::new(),
            gens: vec![0; blocks as usize],
            server: ServerTimeline::new(),
            reported_full: false,
            in_flight: 0,
            stats: TrsStats::default(),
        }
    }

    /// Post-run statistics.
    pub fn stats(&self) -> &TrsStats {
        &self.stats
    }

    /// Module busy cycles.
    pub fn busy_cycles(&self) -> Cycle {
        self.server.busy_cycles()
    }

    /// Tasks currently in flight (0 after a drained run).
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// The block store (for post-run inspection).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    fn task_ref(&self, slot: u32) -> TaskRef {
        TaskRef { trs: self.index, slot, gen: self.gens[slot as usize] }
    }

    fn occupy(&mut self, now: Cycle, cost: Cycle) -> Cycle {
        self.server.occupy(now, cost)
    }

    fn check_ready(&mut self, slot: u32, at: Cycle, ctx: &mut Context<'_, Msg>) {
        let Some(s) = self.slots.get_mut(&slot) else { return };
        if s.state == SlotState::Decoding && s.all_ready() {
            s.state = SlotState::Ready;
            let trace_id = s.trace_id;
            let task = self.task_ref(slot);
            self.slots.get_mut(&slot).expect("present").state = SlotState::Running;
            // Push into the ready queue (the backend's queuing system).
            ctx.send_at(
                self.topo.backend,
                at + self.timing.frontend_hop,
                Msg::TaskReady { task, trace_id },
            );
        }
    }

    /// Handles a `DataReady` for `op` at service completion `at`.
    fn apply_data_ready(
        &mut self,
        op: OperandRef,
        buffer: u64,
        kind: ReadyKind,
        at: Cycle,
        ctx: &mut Context<'_, Msg>,
    ) {
        assert_eq!(
            self.gens[op.task.slot as usize], op.task.gen,
            "DataReady for a recycled slot: operands must be ready before a task finishes"
        );
        let hop = self.timing.frontend_hop;
        let s = self.slots.get_mut(&op.task.slot).expect("live slot (generation checked)");
        let o = &mut s.operands[op.index as usize];
        o.readies_got += 1;
        debug_assert!(
            o.readies_got <= o.readies_needed.max(1),
            "operand {op} received more readies than needed"
        );
        if kind == ReadyKind::Input {
            o.data_ready = true;
            o.buffer = buffer;
            // Readers forward along the chain on receipt (Figure 10);
            // writers (and self-produced readers) notify their consumer
            // only when the task finishes.
            if !o.dir.writes() && !o.self_produced {
                let consumers = o.consumers.clone();
                for next in consumers {
                    self.stats.chain_forwards += 1;
                    ctx.send_at(
                        self.topo.trs[next.task.trs as usize],
                        at + hop,
                        Msg::DataReady { op: next, buffer, kind: ReadyKind::Input },
                    );
                }
            }
        } else if o.buffer == 0 {
            o.buffer = buffer;
        }
        self.check_ready(op.task.slot, at, ctx);
    }
}

impl Component<Msg> for Trs {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let hop = self.timing.frontend_hop;
        match msg {
            // --------------------------------------------------- Figure 6
            Msg::AllocTask { trace_id, operand_count, gw_buf } => {
                let need = blocks_for_operands(operand_count as usize);
                let reply_to = self.topo.gateway;
                if let Some(alloc) = self.store.alloc(need) {
                    // Packet processing + allocation (SRAM/eDRAM) + main
                    // block initialization.
                    let cost =
                        self.timing.packet_cost + alloc.cost_cycles + self.timing.edram_latency;
                    let t = self.occupy(ctx.now(), cost);
                    let slot = alloc.blocks[0];
                    let task = self.trace.task(trace_id);
                    let operands: Vec<OperandSlot> = task
                        .operands
                        .iter()
                        .map(|od| OperandSlot {
                            dir: od.dir,
                            is_scalar: od.kind == OperandKind::Scalar,
                            version: None,
                            consumers: Vec::new(),
                            self_produced: false,
                            data_ready: false,
                            buffer: 0,
                            readies_needed: 0,
                            readies_got: 0,
                            info_received: false,
                        })
                        .collect();
                    let waste =
                        crate::blocks::fragmentation_waste(operands.len(), self.block_bytes);
                    self.stats.waste_sum += waste;
                    self.stats.tasks_allocated += 1;
                    self.in_flight += 1;
                    self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
                    let infos_pending = operands.len() as u8;
                    self.slots.insert(
                        slot,
                        TaskSlot {
                            trace_id,
                            blocks: alloc.blocks,
                            operands,
                            infos_pending,
                            state: SlotState::Decoding,
                            decode_done: None,
                        },
                    );
                    let task_ref = self.task_ref(slot);
                    ctx.send_at(
                        reply_to,
                        t + hop,
                        Msg::AllocReply { task: Some(task_ref), trace_id, gw_buf, trs: self.index },
                    );
                    // Zero-operand tasks are ready the moment they decode.
                    if let Some(s) = self.slots.get_mut(&slot) {
                        if s.infos_pending == 0 {
                            s.decode_done = Some(t);
                            self.stats.decode_times.push(t);
                            self.check_ready(slot, t, ctx);
                        }
                    }
                } else {
                    self.stats.allocs_rejected += 1;
                    self.reported_full = true;
                    let t = self.occupy(ctx.now(), self.timing.packet_cost);
                    ctx.send_at(
                        reply_to,
                        t + hop,
                        Msg::AllocReply { task: None, trace_id, gw_buf, trs: self.index },
                    );
                }
            }

            // ------------------------------------------------ scalar path
            Msg::ScalarOperand { op } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost);
                assert_eq!(self.gens[op.task.slot as usize], op.task.gen, "scalar to stale slot");
                let s = self.slots.get_mut(&op.task.slot).expect("live slot");
                let o = &mut s.operands[op.index as usize];
                debug_assert!(o.is_scalar, "scalar message for a memory operand");
                debug_assert!(!o.info_received, "duplicate scalar for {op}");
                o.info_received = true;
                o.data_ready = true;
                s.infos_pending -= 1;
                if s.infos_pending == 0 {
                    s.decode_done = Some(t);
                    self.stats.decode_times.push(t);
                }
                self.check_ready(op.task.slot, t, ctx);
            }

            // ----------------------------------------------- Figures 7–9
            Msg::OperandInfo { op, size: _, producer, version, readies_needed } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                assert_eq!(self.gens[op.task.slot as usize], op.task.gen, "info to stale slot");
                let self_task = op.task;
                let s = self.slots.get_mut(&op.task.slot).expect("live slot");
                {
                    let o = &mut s.operands[op.index as usize];
                    debug_assert!(!o.info_received, "duplicate OperandInfo for {op}");
                    o.info_received = true;
                    o.version = Some(version);
                    o.readies_needed = readies_needed;
                }
                s.infos_pending -= 1;
                if s.infos_pending == 0 {
                    s.decode_done = Some(t);
                    self.stats.decode_times.push(t);
                }
                match producer {
                    Some(p) if p.task == self_task => {
                        // The previous user is an earlier operand of this
                        // very task: no self-dependency; the data this
                        // task observes is its own — input side is ready,
                        // but consumers chained here must wait for the
                        // task to finish (they read ITS product).
                        let s = self.slots.get_mut(&op.task.slot).expect("live slot");
                        s.operands[op.index as usize].self_produced = true;
                        self.apply_data_ready(op, 0, ReadyKind::Input, t, ctx);
                    }
                    Some(p) => {
                        ctx.send_at(
                            self.topo.trs[p.task.trs as usize],
                            t + hop,
                            Msg::RegisterConsumer { producer: p, consumer: op },
                        );
                        self.check_ready(op.task.slot, t, ctx);
                    }
                    None => {
                        self.check_ready(op.task.slot, t, ctx);
                    }
                }
            }

            // -------------------------------------- Figures 8 and 10
            Msg::RegisterConsumer { producer, consumer } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                let stale = self.gens[producer.task.slot as usize] != producer.task.gen
                    || !self.slots.contains_key(&producer.task.slot);
                if stale {
                    // The producing task finished and its slot was
                    // recycled: its data is long since in memory.
                    self.stats.stale_registers += 1;
                    ctx.send_at(
                        self.topo.trs[consumer.task.trs as usize],
                        t + hop,
                        Msg::DataReady { op: consumer, buffer: 0, kind: ReadyKind::Input },
                    );
                } else {
                    let s = self.slots.get_mut(&producer.task.slot).expect("checked");
                    let o = &mut s.operands[producer.index as usize];
                    if !o.dir.writes() && !o.self_produced && o.data_ready {
                        // A reader that already has its data forwards
                        // immediately.
                        self.stats.chain_forwards += 1;
                        let buffer = o.buffer;
                        ctx.send_at(
                            self.topo.trs[consumer.task.trs as usize],
                            t + hop,
                            Msg::DataReady { op: consumer, buffer, kind: ReadyKind::Input },
                        );
                    } else {
                        debug_assert!(
                            self.chaining || o.dir.writes() || o.self_produced,
                            "with chaining, readers forward instead of accumulating"
                        );
                        debug_assert!(
                            !self.chaining || o.consumers.is_empty(),
                            "an operand chains at most one consumer (ORT forwards the last user)"
                        );
                        o.consumers.push(consumer);
                    }
                }
            }

            // ------------------------------------------------- readiness
            Msg::DataReady { op, buffer, kind } => {
                let t = self.occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                self.apply_data_ready(op, buffer, kind, t, ctx);
            }

            // ----------------------------------------------- task finish
            Msg::TaskFinished { task } => {
                assert_eq!(self.gens[task.slot as usize], task.gen, "finish for stale slot");
                let s = self.slots.remove(&task.slot).expect("live slot");
                debug_assert_eq!(s.state, SlotState::Running, "finish of a non-running task");
                // Traverse all operands: one eDRAM access each.
                let cost = self.timing.packet_cost
                    + self.timing.edram_latency * s.operands.len().max(1) as Cycle;
                let t = self.occupy(ctx.now(), cost);
                for o in &s.operands {
                    if o.dir.writes() || o.self_produced {
                        // The produced data is now ready: notify the first
                        // consumer in the chain (with chaining there is at
                        // most one; the ablation notifies all directly,
                        // paying a packet cost per extra message).
                        let mut t_send = t;
                        for (i, next) in o.consumers.iter().enumerate() {
                            if i > 0 {
                                t_send = self.server.occupy(t_send, self.timing.packet_cost);
                            }
                            ctx.send_at(
                                self.topo.trs[next.task.trs as usize],
                                t_send + hop,
                                Msg::DataReady {
                                    op: *next,
                                    buffer: o.buffer,
                                    kind: ReadyKind::Input,
                                },
                            );
                        }
                    }
                    if let Some(v) = o.version {
                        ctx.send_at(
                            self.topo.ort[v.ovt as usize],
                            t + hop,
                            Msg::ReleaseUse { version: v },
                        );
                    }
                }
                self.store.free(&s.blocks);
                self.gens[task.slot as usize] += 1;
                self.in_flight -= 1;
                if self.reported_full && self.store.can_alloc(4) {
                    self.reported_full = false;
                    ctx.send_at(self.topo.gateway, t + hop, Msg::TrsHasSpace { trs: self.index });
                }
            }

            other => panic!("TRS received unexpected message {other:?}"),
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
