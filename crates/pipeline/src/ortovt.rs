//! Object Renaming Table + its associated Object Versioning Table
//! (paper, Sections IV.B.3 and IV.B.4).
//!
//! Each ORT "is associated with exactly one OVT"; we model the pair as
//! one component with **two** serial-server timelines so each module
//! charges its own 16-cycle packet processing and 22-cycle eDRAM
//! accesses, while their shared state stays coherent (the hardware keeps
//! it coherent with a private point-to-point exchange; co-simulating the
//! pair avoids modeling that inner handshake explicitly).
//!
//! Behaviour implemented (Figures 7–9):
//!
//! - **ORT**: a 16-way logical cache over eDRAM (tags in two sequentially
//!   read 64 B blocks), mapping object base addresses to the *last user*
//!   operand and the current version. It **never evicts**: a full set
//!   (or an exhausted OVT) blocks the module head-of-line and stalls the
//!   gateway until an entry is released.
//! - **OVT**: version records with usage counts, next-version chaining,
//!   and rename buffers. Output operands get a fresh buffer from a
//!   power-of-two bucket allocator over an OS-assigned memory region
//!   (breaking WaR/WaW); inout operands chain to the previous version
//!   and receive their "output ready" only when it drains; fully drained
//!   renamed versions are copied back by DMA (accounted, not simulated
//!   byte-by-byte).

use std::collections::VecDeque;

use tss_sim::{Component, Context, Cycle, ServerTimeline, SplitMix64};
use tss_trace::Direction;

use crate::config::FrontendConfig;
use crate::gateway::Topology;
use crate::ids::{OperandRef, VersionRef};
use crate::msg::{Msg, ReadyKind};

/// Power-of-two bucket allocator for rename buffers (Section IV.B.4:
/// "a fixed number of buckets, assigned to allocate predetermined
/// power-of-2 sizes", backed by OS-assigned main memory).
///
/// Free lists are a dense array indexed by the class's bit position
/// (classes are powers of two from 64 up, so there are at most 33), not
/// a hash map: buffer grabs and returns sit on the decode hot path.
#[derive(Debug)]
pub struct BucketAlloc {
    base: u64,
    bump: u64,
    /// `free[log2(class)]` holds returned buffers of that class.
    free: Vec<Vec<u64>>,
    allocated_bytes: u64,
    peak_bytes: u64,
    grabs: u64,
}

impl BucketAlloc {
    /// A new allocator over a region starting at `base`.
    pub fn new(base: u64) -> Self {
        BucketAlloc {
            base,
            bump: 0,
            free: vec![Vec::new(); 33],
            allocated_bytes: 0,
            peak_bytes: 0,
            grabs: 0,
        }
    }

    fn class_of(size: u32) -> u32 {
        size.next_power_of_two().max(64)
    }

    /// Index of a class's free list: its (single) set bit position, with
    /// a wrapped `next_power_of_two` (0) parked in the last entry.
    fn list_of(class: u32) -> usize {
        class.trailing_zeros() as usize
    }

    /// Grabs a buffer for an object of `size` bytes.
    pub fn alloc(&mut self, size: u32) -> u64 {
        self.grabs += 1;
        let class = Self::class_of(size);
        self.allocated_bytes += class as u64;
        self.peak_bytes = self.peak_bytes.max(self.allocated_bytes);
        if let Some(addr) = self.free[Self::list_of(class)].pop() {
            return addr;
        }
        let addr = self.base + self.bump;
        self.bump += class as u64;
        addr
    }

    /// Returns a buffer of `size` bytes to its bucket.
    pub fn free(&mut self, addr: u64, size: u32) {
        let class = Self::class_of(size);
        debug_assert!(self.allocated_bytes >= class as u64, "freeing more than allocated");
        self.allocated_bytes -= class as u64;
        self.free[Self::list_of(class)].push(addr);
    }

    /// Live rename-buffer bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Peak rename-buffer bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Total allocations served.
    pub fn grabs(&self) -> u64 {
        self.grabs
    }
}

#[derive(Debug, Clone)]
struct OrtEntry {
    addr: u64,
    last_user: OperandRef,
    /// In-flight producer of the current version, if any (used by the
    /// no-chaining ablation, which registers consumers directly with
    /// the producer instead of the last user).
    last_writer: Option<OperandRef>,
    current_version: u32,
    /// Allocated version records of this object (current + undrained
    /// superseded ones). The entry is released when this drops to zero
    /// live records with a drained current version.
    live_records: u32,
}

#[derive(Debug, Clone)]
struct VersionRec {
    addr: u64,
    size: u32,
    entry_slot: u32,
    usage: u32,
    /// Total operands that ever referenced this version (writer +
    /// readers): the consumer-chain length is `users_total - 1`.
    users_total: u32,
    superseded: bool,
    /// An inout (or unrenamed output) writer waiting for this version to
    /// drain before its buffer is free.
    chained_writer: Option<OperandRef>,
    rename_buffer: Option<u64>,
}

/// One OVT record slot: generation + in-place record, so the hot
/// `ReleaseUse` path (generation check + usage countdown) touches one
/// indexed entry instead of two parallel arrays (ISSUE 5, §9.1).
#[derive(Debug, Clone)]
struct VersionEntry {
    gen: u32,
    rec: Option<VersionRec>,
}

#[derive(Debug, Clone)]
struct PendingOp {
    op: OperandRef,
    addr: u64,
    size: u32,
    dir: Direction,
}

/// Counters exported after a run.
///
/// Cache-line-aligned so an array of module stats (one per ORT/OVT
/// pair) can never false-share: the simulator core is single-threaded
/// today, but these blocks are written on every lookup, and a parallel
/// sweep driver running one `Simulation` per thread keeps each module's
/// counters on private lines (ISSUE 4 satellite; measured delta on the
/// single-threaded engine is noise-level, recorded in EXPERIMENTS.md).
#[derive(Debug, Clone, Default)]
#[repr(align(128))]
pub struct OrtOvtStats {
    /// Operand lookups processed.
    pub lookups: u64,
    /// Lookups that hit a live entry.
    pub hits: u64,
    /// Versions created.
    pub versions_created: u64,
    /// Output renames performed.
    pub renames: u64,
    /// Drained renamed versions copied back by DMA.
    pub copybacks: u64,
    /// Bytes copied back.
    pub copyback_bytes: u64,
    /// Cycles the module spent blocked (set full / OVT exhausted).
    pub blocked_cycles: u64,
    /// Times the module blocked.
    pub blocks: u64,
    /// Peak live ORT entries.
    pub peak_entries: u32,
    /// Peak live OVT records.
    pub peak_records: u32,
    /// Histogram of consumer-chain lengths (readers per version);
    /// bucket `i` counts versions with `i` readers, the last bucket is
    /// `9+` (Figure 10: for most benchmarks 95% of chains are <= 2).
    pub chain_hist: [u64; 10],
}

/// One ORT + OVT pair.
pub struct OrtOvt {
    index: u8,
    sets: u32,
    ways: usize,
    timing: crate::config::TimingParams,
    renaming: bool,
    chaining: bool,
    topo: Topology,
    entries: Vec<Option<OrtEntry>>,
    /// Probe acceleration: `tags[slot]` mirrors `entries[slot].addr` and
    /// `live_mask[set]` has bit `w` set iff way `w` is occupied, so a
    /// set probe reads 2 cache lines of tags instead of 16 ways × 48 B
    /// of entries. Tags are only meaningful under a set live bit.
    tags: Vec<u64>,
    live_mask: Vec<u16>,
    live_entries: u32,
    versions: Vec<VersionEntry>,
    vfree: Vec<u32>,
    queue: VecDeque<PendingOp>,
    processing: bool,
    blocked: bool,
    blocked_since: Cycle,
    ort_server: ServerTimeline,
    ovt_server: ServerTimeline,
    buffers: BucketAlloc,
    stats: OrtOvtStats,
}

impl OrtOvt {
    /// Builds pair `index` of the frontend.
    pub fn new(index: u8, cfg: &FrontendConfig, topo: Topology) -> Self {
        let sets = cfg.sets_per_ort();
        let ways = cfg.ort_ways;
        assert!(ways <= 16, "the probe bitmask models at most 16 ways");
        let records = cfg.records_per_ovt();
        OrtOvt {
            index,
            sets,
            ways,
            timing: cfg.timing.clone(),
            renaming: cfg.renaming,
            chaining: cfg.chaining,
            topo,
            entries: vec![None; (sets as usize) * ways],
            tags: vec![0; (sets as usize) * ways],
            live_mask: vec![0; sets as usize],
            live_entries: 0,
            versions: vec![VersionEntry { gen: 0, rec: None }; records as usize],
            vfree: (0..records).rev().collect(),
            queue: VecDeque::with_capacity(64),
            processing: false,
            blocked: false,
            blocked_since: 0,
            ort_server: ServerTimeline::new(),
            ovt_server: ServerTimeline::new(),
            // Each OVT gets its own OS-assigned region for rename buffers.
            buffers: BucketAlloc::new((index as u64 + 1) << 40),
            stats: OrtOvtStats::default(),
        }
    }

    /// Post-run statistics.
    pub fn stats(&self) -> &OrtOvtStats {
        &self.stats
    }

    /// ORT busy cycles.
    pub fn ort_busy_cycles(&self) -> Cycle {
        self.ort_server.busy_cycles()
    }

    /// OVT busy cycles.
    pub fn ovt_busy_cycles(&self) -> Cycle {
        self.ovt_server.busy_cycles()
    }

    /// Rename-buffer allocator (for post-run inspection).
    pub fn buffers(&self) -> &BucketAlloc {
        &self.buffers
    }

    /// Live entries right now (should be 0 after a drained run).
    pub fn live_entries(&self) -> u32 {
        self.live_entries
    }

    /// Live version records right now.
    pub fn live_records(&self) -> u32 {
        self.versions.len() as u32 - self.vfree.len() as u32
    }

    fn set_of(&self, addr: u64) -> u32 {
        ((SplitMix64::new(addr).next_u64() >> 32) % self.sets as u64) as u32
    }

    fn find_entry(&self, addr: u64) -> Option<u32> {
        let set = self.set_of(addr) as usize;
        let mut mask = self.live_mask[set];
        while mask != 0 {
            let w = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let slot = set * self.ways + w;
            if self.tags[slot] == addr {
                debug_assert_eq!(
                    self.entries[slot].as_ref().map(|e| e.addr),
                    Some(addr),
                    "tag/entry mirror out of sync"
                );
                return Some(slot as u32);
            }
        }
        None
    }

    fn free_way(&self, addr: u64) -> Option<u32> {
        let set = self.set_of(addr) as usize;
        let free = !self.live_mask[set] & ((1u32 << self.ways) - 1) as u16;
        if free == 0 {
            return None;
        }
        let w = free.trailing_zeros() as usize;
        Some((set * self.ways + w) as u32)
    }

    /// Installs `entry` in `slot`, keeping the probe mirror in sync.
    fn set_entry(&mut self, slot: u32, entry: OrtEntry) {
        let set = slot as usize / self.ways;
        let way = slot as usize % self.ways;
        self.tags[slot as usize] = entry.addr;
        self.live_mask[set] |= 1 << way;
        self.entries[slot as usize] = Some(entry);
    }

    /// Clears `slot`, keeping the probe mirror in sync.
    fn clear_entry(&mut self, slot: u32) {
        let set = slot as usize / self.ways;
        let way = slot as usize % self.ways;
        self.live_mask[set] &= !(1 << way);
        self.entries[slot as usize] = None;
    }

    fn vref(&self, idx: u32) -> VersionRef {
        VersionRef { ovt: self.index, idx, gen: self.versions[idx as usize].gen }
    }

    fn alloc_version(&mut self, addr: u64, size: u32, entry_slot: u32, rename: bool) -> u32 {
        let idx = self.vfree.pop().expect("caller checked a record is free");
        let rename_buffer = if rename { Some(self.buffers.alloc(size)) } else { None };
        if rename {
            self.stats.renames += 1;
        }
        self.versions[idx as usize].rec = Some(VersionRec {
            addr,
            size,
            entry_slot,
            usage: 1, // the creating operand holds one use
            users_total: 1,
            superseded: false,
            chained_writer: None,
            rename_buffer,
        });
        self.stats.versions_created += 1;
        self.stats.peak_records = self.stats.peak_records.max(self.live_records());
        idx
    }

    /// Frees a version record, performing the DMA copy-back accounting
    /// for renamed buffers, and notifies a chained writer if present.
    /// Returns the entry slot the record belonged to.
    fn finalize_version(&mut self, idx: u32, at: Cycle, ctx: &mut Context<'_, Msg>) -> u32 {
        let rec = self.versions[idx as usize].rec.take().expect("finalizing a live version");
        debug_assert_eq!(rec.usage, 0, "finalize requires a drained version");
        let readers = rec.users_total.saturating_sub(1) as usize;
        self.stats.chain_hist[readers.min(9)] += 1;
        if let Some(buf) = rec.rename_buffer {
            // The external DMA engine copies the temporary buffer back to
            // the original object address (Section IV).
            self.stats.copybacks += 1;
            self.stats.copyback_bytes += rec.size as u64;
            self.buffers.free(buf, rec.size);
        }
        if let Some(writer) = rec.chained_writer {
            // "data ready for output": the previous version drained.
            ctx.send_at(
                self.topo.trs[writer.task.trs as usize],
                at + self.timing.frontend_hop,
                Msg::DataReady { op: writer, buffer: rec.addr, kind: ReadyKind::Output },
            );
        }
        self.versions[idx as usize].gen += 1;
        self.vfree.push(idx);
        let entry = self.entries[rec.entry_slot as usize]
            .as_mut()
            .expect("version belongs to a live entry");
        entry.live_records -= 1;
        rec.entry_slot
    }

    /// If the entry holds only its (drained) current version, release the
    /// entry — this is what un-stalls the gateway (Section IV.B.3).
    fn maybe_teardown(&mut self, entry_slot: u32, at: Cycle, ctx: &mut Context<'_, Msg>) {
        let Some(e) = &self.entries[entry_slot as usize] else { return };
        if e.live_records != 1 {
            return;
        }
        let cur = e.current_version;
        let drained = self.versions[cur as usize]
            .rec
            .as_ref()
            .map(|v| v.usage == 0 && !v.superseded)
            .unwrap_or(false);
        if !drained {
            return;
        }
        // Free the current record (copy-back if renamed) and the entry.
        let rec = self.versions[cur as usize].rec.as_mut().expect("checked");
        debug_assert!(rec.chained_writer.is_none(), "current version cannot have a chained writer");
        rec.superseded = true; // mark so finalize's invariants hold
        self.finalize_version(cur, at, ctx);
        self.clear_entry(entry_slot);
        self.live_entries -= 1;
        self.maybe_unblock(at, ctx);
    }

    fn maybe_unblock(&mut self, at: Cycle, ctx: &mut Context<'_, Msg>) {
        if self.blocked {
            self.blocked = false;
            self.stats.blocked_cycles += at.saturating_sub(self.blocked_since);
            ctx.send_at(
                self.topo.gateway,
                at + self.timing.frontend_hop,
                Msg::OrtResumed { ort: self.index },
            );
            if !self.processing && !self.queue.is_empty() {
                self.processing = true;
                let me = ctx.self_id();
                ctx.send_at(me, at, Msg::OrtWork);
            }
        }
    }

    fn block(&mut self, ctx: &mut Context<'_, Msg>) {
        self.blocked = true;
        self.blocked_since = ctx.now();
        self.stats.blocks += 1;
        self.processing = false;
        ctx.send(self.topo.gateway, self.timing.frontend_hop, Msg::OrtStalled { ort: self.index });
    }

    /// Attempts to process the queue head. Returns the service completion
    /// time, or `None` if the head blocked.
    fn process_head(&mut self, ctx: &mut Context<'_, Msg>) -> Option<Cycle> {
        let head = self.queue.front().cloned().expect("caller checked non-empty");
        let hit_slot = self.find_entry(head.addr);
        let needs_entry = hit_slot.is_none();
        // Every decode needs a version record except a read hit (which
        // joins the current version).
        let needs_record = needs_entry || head.dir.writes();
        if needs_entry && self.free_way(head.addr).is_none() {
            self.block(ctx);
            return None;
        }
        if needs_record && self.vfree.is_empty() {
            self.block(ctx);
            return None;
        }
        self.queue.pop_front();
        self.stats.lookups += 1;
        if hit_slot.is_some() {
            self.stats.hits += 1;
        }

        // ORT service: packet processing + two sequential 64 B tag-block
        // reads (Section IV.B.3).
        let lookup_cost = self.timing.packet_cost + 2 * self.timing.edram_latency;
        let t_ort = self.ort_server.occupy(ctx.now(), lookup_cost);
        let hop = self.timing.frontend_hop;
        let trs_of = |op: OperandRef| op.task.trs as usize;

        match head.dir {
            Direction::In => {
                if let Some(slot) = hit_slot {
                    // Figure 8: forward the previous user's operand ID and
                    // join the current version. (Without chaining, the
                    // consumer registers directly with the producer.)
                    let e = self.entries[slot as usize].as_mut().expect("hit");
                    let producer = if self.chaining { Some(e.last_user) } else { e.last_writer };
                    e.last_user = head.op;
                    let cur = e.current_version;
                    let v = self.vref(cur);
                    {
                        let rec =
                            self.versions[cur as usize].rec.as_mut().expect("current is live");
                        rec.usage += 1;
                        rec.users_total += 1;
                    }
                    ctx.send_at(
                        self.topo.trs[trs_of(head.op)],
                        t_ort + hop,
                        Msg::OperandInfo {
                            op: head.op,
                            size: head.size,
                            producer,
                            version: v,
                            readies_needed: 1,
                        },
                    );
                    if producer.is_none() {
                        // No in-flight producer (read-miss-created
                        // version, no chaining): data is in memory.
                        let t_ovt = self
                            .ovt_server
                            .occupy(t_ort, self.timing.packet_cost + self.timing.edram_latency);
                        ctx.send_at(
                            self.topo.trs[trs_of(head.op)],
                            t_ovt + hop,
                            Msg::DataReady {
                                op: head.op,
                                buffer: head.addr,
                                kind: ReadyKind::Input,
                            },
                        );
                    }
                } else {
                    // Miss: the data lives in memory; create the initial
                    // version and answer ready immediately.
                    let slot = self.free_way(head.addr).expect("checked");
                    let vidx = self.alloc_version(head.addr, head.size, slot, false);
                    self.set_entry(
                        slot,
                        OrtEntry {
                            addr: head.addr,
                            last_user: head.op,
                            last_writer: None,
                            current_version: vidx,
                            live_records: 1,
                        },
                    );
                    self.live_entries += 1;
                    self.stats.peak_entries = self.stats.peak_entries.max(self.live_entries);
                    let v = self.vref(vidx);
                    ctx.send_at(
                        self.topo.trs[trs_of(head.op)],
                        t_ort + hop,
                        Msg::OperandInfo {
                            op: head.op,
                            size: head.size,
                            producer: None,
                            version: v,
                            readies_needed: 1,
                        },
                    );
                    let t_ovt = self
                        .ovt_server
                        .occupy(t_ort, self.timing.packet_cost + self.timing.edram_latency);
                    ctx.send_at(
                        self.topo.trs[trs_of(head.op)],
                        t_ovt + hop,
                        Msg::DataReady { op: head.op, buffer: head.addr, kind: ReadyKind::Input },
                    );
                }
            }
            Direction::Out | Direction::InOut => {
                let inout = head.dir == Direction::InOut;
                let rename = !inout && self.renaming;
                // Resolve (or create) the entry.
                let (slot, prev_user, prev_cur) = match hit_slot {
                    Some(slot) => {
                        let e = self.entries[slot as usize].as_ref().expect("hit");
                        let prev = if self.chaining { Some(e.last_user) } else { e.last_writer };
                        (slot, prev, Some(e.current_version))
                    }
                    None => {
                        let slot = self.free_way(head.addr).expect("checked");
                        self.set_entry(
                            slot,
                            OrtEntry {
                                addr: head.addr,
                                last_user: head.op,
                                last_writer: None,
                                current_version: 0, // fixed below
                                live_records: 0,
                            },
                        );
                        self.live_entries += 1;
                        self.stats.peak_entries = self.stats.peak_entries.max(self.live_entries);
                        (slot, None, None)
                    }
                };
                let inout_needs_memory_input = inout && prev_user.is_none() && hit_slot.is_some();
                let vidx = self.alloc_version(head.addr, head.size, slot, rename);
                {
                    let e = self.entries[slot as usize].as_mut().expect("just resolved");
                    e.last_user = head.op;
                    e.last_writer = Some(head.op);
                    e.current_version = vidx;
                    e.live_records += 1;
                }
                let v = self.vref(vidx);
                let readies_needed = if inout { 2 } else { 1 };
                // Inout consumes the previous version's data via the
                // consumer chain; pure outputs read nothing.
                let producer = if inout { prev_user } else { None };
                ctx.send_at(
                    self.topo.trs[trs_of(head.op)],
                    t_ort + hop,
                    Msg::OperandInfo {
                        op: head.op,
                        size: head.size,
                        producer,
                        version: v,
                        readies_needed,
                    },
                );

                let t_ovt = self
                    .ovt_server
                    .occupy(t_ort, self.timing.packet_cost + self.timing.edram_latency);
                if rename {
                    // Figure 7: renamed output — buffer immediately free.
                    let buf = self.versions[vidx as usize]
                        .rec
                        .as_ref()
                        .expect("live")
                        .rename_buffer
                        .expect("renamed");
                    ctx.send_at(
                        self.topo.trs[trs_of(head.op)],
                        t_ovt + hop,
                        Msg::DataReady { op: head.op, buffer: buf, kind: ReadyKind::Output },
                    );
                    // The previous version drains independently.
                    if let Some(pc) = prev_cur {
                        let drained = {
                            let p = self.versions[pc as usize].rec.as_mut().expect("live");
                            p.superseded = true;
                            p.usage == 0
                        };
                        if drained {
                            let es = self.finalize_version(pc, t_ovt, ctx);
                            debug_assert_eq!(es, slot);
                        }
                    }
                } else {
                    // Figure 9 (or the no-renaming ablation): chain to the
                    // previous version; output ready when it drains.
                    match prev_cur {
                        Some(pc) => {
                            let drained = {
                                let p = self.versions[pc as usize].rec.as_mut().expect("live");
                                p.superseded = true;
                                p.usage == 0
                            };
                            if drained {
                                let es = self.finalize_version(pc, t_ovt, ctx);
                                debug_assert_eq!(es, slot);
                                ctx.send_at(
                                    self.topo.trs[trs_of(head.op)],
                                    t_ovt + hop,
                                    Msg::DataReady {
                                        op: head.op,
                                        buffer: head.addr,
                                        kind: ReadyKind::Output,
                                    },
                                );
                            } else {
                                self.versions[pc as usize]
                                    .rec
                                    .as_mut()
                                    .expect("live")
                                    .chained_writer = Some(head.op);
                            }
                        }
                        None => {
                            // No previous version: buffer free now.
                            ctx.send_at(
                                self.topo.trs[trs_of(head.op)],
                                t_ovt + hop,
                                Msg::DataReady {
                                    op: head.op,
                                    buffer: head.addr,
                                    kind: ReadyKind::Output,
                                },
                            );
                        }
                    }
                    if inout && prev_user.is_none() {
                        // No in-flight producer: input data is in memory
                        // (miss, or no-chaining hit without a writer).
                        let _ = inout_needs_memory_input;
                        ctx.send_at(
                            self.topo.trs[trs_of(head.op)],
                            t_ovt + hop,
                            Msg::DataReady {
                                op: head.op,
                                buffer: head.addr,
                                kind: ReadyKind::Input,
                            },
                        );
                    }
                }
            }
        }
        Some(t_ort)
    }
}

impl Component<Msg> for OrtOvt {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::DecodeOperand { op, addr, size, dir } => {
                self.queue.push_back(PendingOp { op, addr, size, dir });
                if !self.processing && !self.blocked {
                    self.processing = true;
                    let me = ctx.self_id();
                    ctx.send(me, 0, Msg::OrtWork);
                }
            }
            Msg::OrtWork => {
                if self.blocked {
                    self.processing = false;
                    return;
                }
                if self.queue.is_empty() {
                    self.processing = false;
                    return;
                }
                match self.process_head(ctx) {
                    Some(t_done) => {
                        if self.queue.is_empty() {
                            self.processing = false;
                        } else {
                            let me = ctx.self_id();
                            ctx.send_at(me, t_done, Msg::OrtWork);
                        }
                    }
                    None => {
                        // Blocked: `block()` already recorded it.
                    }
                }
            }
            Msg::ReleaseUse { version } => {
                assert_eq!(version.ovt, self.index, "release routed to the wrong OVT");
                let t = self
                    .ovt_server
                    .occupy(ctx.now(), self.timing.packet_cost + self.timing.edram_latency);
                let (drained, superseded, entry_slot) = {
                    let e = &mut self.versions[version.idx as usize];
                    assert_eq!(
                        e.gen, version.gen,
                        "release of a stale version: uses must keep records alive"
                    );
                    let rec = e.rec.as_mut().expect("live version (generation checked)");
                    debug_assert!(rec.usage > 0, "usage underflow");
                    rec.usage -= 1;
                    (rec.usage == 0, rec.superseded, rec.entry_slot)
                };
                if drained {
                    if superseded {
                        self.finalize_version(version.idx, t, ctx);
                        self.maybe_teardown(entry_slot, t, ctx);
                        self.maybe_unblock(t, ctx);
                    } else {
                        self.maybe_teardown(entry_slot, t, ctx);
                    }
                }
            }
            other => panic!("ORT/OVT received unexpected message {other:?}"),
        }
    }
}
