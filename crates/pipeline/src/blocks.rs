//! TRS storage management: fixed 128-byte eDRAM blocks, an inode-style
//! task layout, and a free list with an SRAM head buffer (paper, Section
//! IV.B.2 and Figure 11).
//!
//! - Each task gets one *main block* (task-global data + first 4
//!   operands) and up to three *indirect blocks* (5 operands each), for a
//!   maximum of 19 operands.
//! - Free blocks are chained as a list whose nodes each hold 63 pointers;
//!   the addresses of the first 64 free blocks live in a 128 B SRAM
//!   buffer, so "a typical block allocation ... takes only 1 cycle".
//!   When the SRAM buffer empties, it is refilled from the eDRAM-resident
//!   list node (one eDRAM access).

/// Capacity of the SRAM free-block buffer (addresses).
pub const SRAM_BUFFER_BLOCKS: usize = 64;

/// Pointers held by one eDRAM free-list node.
pub const FREELIST_NODE_PTRS: usize = 63;

/// How many 128 B blocks a task with `operands` operands occupies
/// (Figure 11's inode layout).
///
/// # Panics
///
/// Panics if `operands > 19`.
pub fn blocks_for_operands(operands: usize) -> u32 {
    assert!(operands <= 19, "the inode layout supports at most 19 operands");
    match operands {
        0..=4 => 1,
        5..=9 => 2,
        10..=14 => 3,
        _ => 4,
    }
}

/// Result of one block allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Allocated block ids; the first is the main block (the task slot).
    pub blocks: Vec<u32>,
    /// Cycles the allocation cost (1 per SRAM-served block, plus an
    /// eDRAM access per refill).
    pub cost_cycles: u64,
}

/// The per-TRS block allocator.
#[derive(Debug)]
pub struct BlockStore {
    total: u32,
    /// Blocks in the SRAM head buffer (served in 1 cycle).
    sram: Vec<u32>,
    /// Blocks on the eDRAM free list (refills the SRAM buffer).
    edram_list: Vec<u32>,
    /// Allocation bitmap for double-free detection.
    allocated: Vec<bool>,
    edram_latency: u64,
    refills: u64,
    peak_allocated: u32,
    allocated_count: u32,
}

impl BlockStore {
    /// Creates a store of `total` blocks, all free.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: u32, edram_latency: u64) -> Self {
        assert!(total > 0, "a TRS needs storage blocks");
        let mut sram: Vec<u32> = Vec::with_capacity(SRAM_BUFFER_BLOCKS);
        let mut edram_list: Vec<u32> = Vec::new();
        // Lowest block ids sit in the SRAM buffer first (cosmetic only).
        for b in (0..total).rev() {
            edram_list.push(b);
        }
        for _ in 0..SRAM_BUFFER_BLOCKS.min(total as usize) {
            let b = edram_list.pop().expect("counted");
            sram.push(b);
        }
        BlockStore {
            total,
            sram,
            edram_list,
            allocated: vec![false; total as usize],
            edram_latency,
            refills: 0,
            peak_allocated: 0,
            allocated_count: 0,
        }
    }

    /// Total blocks.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Currently free blocks.
    pub fn free_count(&self) -> u32 {
        self.total - self.allocated_count
    }

    /// Currently allocated blocks.
    pub fn allocated_count(&self) -> u32 {
        self.allocated_count
    }

    /// High-water mark of allocated blocks.
    pub fn peak_allocated(&self) -> u32 {
        self.peak_allocated
    }

    /// SRAM-buffer refills performed so far.
    pub fn refills(&self) -> u64 {
        self.refills
    }

    /// Whether `count` blocks can be allocated right now.
    pub fn can_alloc(&self, count: u32) -> bool {
        self.free_count() >= count
    }

    fn pop_free(&mut self) -> (u32, u64) {
        if let Some(b) = self.sram.pop() {
            return (b, 1);
        }
        // Refill the SRAM buffer from the eDRAM list node.
        self.refills += 1;
        let mut cost = self.edram_latency;
        let take = FREELIST_NODE_PTRS.min(self.edram_list.len());
        for _ in 0..take {
            let b = self.edram_list.pop().expect("counted");
            self.sram.push(b);
        }
        let b = self.sram.pop().expect("refill produced at least one block");
        cost += 1;
        (b, cost)
    }

    /// Allocates `count` blocks, or `None` if not enough are free.
    pub fn alloc(&mut self, count: u32) -> Option<Allocation> {
        let mut blocks = vec![0u32; count as usize];
        let cost = self.alloc_into(&mut blocks)?;
        Some(Allocation { blocks, cost_cycles: cost })
    }

    /// Allocation without the `Vec`: fills `out` (whose length is the
    /// block count) and returns the cycle cost, or `None` if not enough
    /// blocks are free. The hot path (one task allocation per decoded
    /// task) uses this with an inline array.
    pub fn alloc_into(&mut self, out: &mut [u32]) -> Option<u64> {
        let count = out.len() as u32;
        if !self.can_alloc(count) {
            return None;
        }
        let mut cost = 0u64;
        for slot in out.iter_mut() {
            let (b, c) = self.pop_free();
            debug_assert!(!self.allocated[b as usize], "free list handed out a live block");
            self.allocated[b as usize] = true;
            *slot = b;
            cost += c;
        }
        self.allocated_count += count;
        self.peak_allocated = self.peak_allocated.max(self.allocated_count);
        Some(cost)
    }

    /// Returns blocks to the free list.
    ///
    /// # Panics
    ///
    /// Panics on double-free or an out-of-range block id.
    pub fn free(&mut self, blocks: &[u32]) {
        for &b in blocks {
            assert!((b as usize) < self.allocated.len(), "block {b} out of range");
            assert!(self.allocated[b as usize], "double free of block {b}");
            self.allocated[b as usize] = false;
            if self.sram.len() < SRAM_BUFFER_BLOCKS {
                self.sram.push(b);
            } else {
                self.edram_list.push(b);
            }
        }
        self.allocated_count -= blocks.len() as u32;
    }
}

/// Internal-fragmentation accounting for the inode layout: a task with
/// `operands` operands uses `blocks × 128` bytes of storage but needs
/// only the task globals plus its operand records. The paper reports the
/// average waste at ~20 %.
pub fn fragmentation_waste(operands: usize, block_bytes: u64) -> f64 {
    let blocks = blocks_for_operands(operands) as u64;
    // Task globals modeled at 24 B, operand records at 24 B each: a main
    // block of 128 B = 24 + 4x26 fits 4 operands, matching Figure 11.
    let used = 24 + 24 * operands as u64;
    let total = blocks * block_bytes;
    1.0 - (used.min(total) as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_block_counts_match_figure_11() {
        assert_eq!(blocks_for_operands(0), 1);
        assert_eq!(blocks_for_operands(4), 1);
        assert_eq!(blocks_for_operands(5), 2);
        assert_eq!(blocks_for_operands(9), 2);
        assert_eq!(blocks_for_operands(10), 3);
        assert_eq!(blocks_for_operands(14), 3);
        assert_eq!(blocks_for_operands(15), 4);
        assert_eq!(blocks_for_operands(19), 4);
    }

    #[test]
    #[should_panic(expected = "at most 19")]
    fn twenty_operands_rejected() {
        let _ = blocks_for_operands(20);
    }

    #[test]
    fn sram_allocations_cost_one_cycle_each() {
        let mut s = BlockStore::new(256, 22);
        let a = s.alloc(2).expect("space");
        assert_eq!(a.blocks.len(), 2);
        assert_eq!(a.cost_cycles, 2, "SRAM-served allocations are 1 cycle/block");
        assert_eq!(s.allocated_count(), 2);
    }

    #[test]
    fn refill_pays_edram_latency() {
        let mut s = BlockStore::new(256, 22);
        // Drain the 64-entry SRAM buffer.
        for _ in 0..64 {
            s.alloc(1).expect("space");
        }
        let a = s.alloc(1).expect("space");
        assert!(a.cost_cycles >= 22, "refill must pay eDRAM: {}", a.cost_cycles);
        assert_eq!(s.refills(), 1);
    }

    #[test]
    fn exhaustion_returns_none_and_free_restores() {
        let mut s = BlockStore::new(8, 22);
        let a = s.alloc(8).expect("all");
        assert!(s.alloc(1).is_none());
        assert!(!s.can_alloc(1));
        s.free(&a.blocks);
        assert_eq!(s.free_count(), 8);
        assert!(s.alloc(4).is_some());
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut s = BlockStore::new(16, 22);
        let a = s.alloc(10).expect("space");
        s.free(&a.blocks);
        s.alloc(2).expect("space");
        assert_eq!(s.peak_allocated(), 10);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = BlockStore::new(8, 22);
        let a = s.alloc(1).expect("space");
        s.free(&a.blocks);
        s.free(&a.blocks);
    }

    #[test]
    fn all_blocks_unique_across_allocations() {
        let mut s = BlockStore::new(300, 22);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            let a = s.alloc(10).expect("space");
            for b in &a.blocks {
                assert!(seen.insert(*b), "block {b} handed out twice");
            }
        }
        assert_eq!(s.free_count(), 0);
    }

    #[test]
    fn fragmentation_is_about_twenty_percent_for_typical_tasks() {
        // Typical tasks have 2-5 operands (Table I benchmarks); the
        // paper reports ~20% average waste.
        let avg: f64 = (2..=5).map(|n| fragmentation_waste(n, 128)).sum::<f64>() / 4.0;
        assert!((0.10..=0.40).contains(&avg), "average waste {avg:.2}");
    }

    #[test]
    fn freed_blocks_prefer_sram_buffer() {
        let mut s = BlockStore::new(128, 22);
        // Empty the SRAM buffer.
        let a = s.alloc(64).expect("space");
        s.free(&a.blocks[..4]);
        // Next allocation is served from SRAM again at 1 cycle.
        let b = s.alloc(1).expect("space");
        assert_eq!(b.cost_cycles, 1);
    }
}
