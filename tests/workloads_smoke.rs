//! Fast workload regression gate: every Table-I benchmark must produce
//! a non-empty, acyclic `Scale::Small` trace. Catches generator
//! breakage in seconds, without the full oracle-validated end-to-end
//! run in `end_to_end.rs`.

use task_superscalar::prelude::*;
use workloads::Scale;

/// Kahn's algorithm over the enforced dependency edges; returns the
/// number of tasks that can be topologically ordered.
fn topo_orderable(g: &DepGraph) -> usize {
    let n = g.len();
    let mut indegree: Vec<usize> = (0..n).map(|t| g.preds(t).len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&t| indegree[t] == 0).collect();
    let mut ordered = 0;
    while let Some(t) = ready.pop() {
        ordered += 1;
        for &s in g.succs(t) {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    }
    ordered
}

#[test]
fn benchmark_catalog_is_complete() {
    let all = Benchmark::all();
    assert!(!all.is_empty(), "Benchmark::all() must list the Table-I benchmarks");
    assert_eq!(all.len(), 9, "the paper evaluates nine benchmarks (Table I)");
    let mut names: Vec<&str> = all.iter().map(|b| b.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), all.len(), "benchmark names must be unique");
}

#[test]
fn every_small_trace_is_nonempty_and_acyclic() {
    for bench in Benchmark::all() {
        let trace = bench.trace(Scale::Small, 42);
        assert!(!trace.is_empty(), "{bench:?}: empty Scale::Small trace");
        let g = DepGraph::from_trace(&trace);
        assert_eq!(g.len(), trace.len(), "{bench:?}: oracle node count mismatch");
        assert_eq!(topo_orderable(&g), trace.len(), "{bench:?}: dependency graph has a cycle");
    }
}

#[test]
fn traces_are_reproducible_per_seed() {
    for bench in Benchmark::all() {
        let a = bench.trace(Scale::Small, 7);
        let b = bench.trace(Scale::Small, 7);
        assert_eq!(a.len(), b.len(), "{bench:?}: trace length differs across identical seeds");
        let ga = DepGraph::from_trace(&a);
        let gb = DepGraph::from_trace(&b);
        assert_eq!(
            ga.enforced_edge_count(),
            gb.enforced_edge_count(),
            "{bench:?}: dependency structure differs across identical seeds"
        );
    }
}
