//! Property-based tests (proptest) on the core invariants:
//!
//! - the dependency oracle matches a brute-force O(n²) recomputation;
//! - every hardware-pipeline schedule satisfies the oracle and drains
//!   all frontend state, for arbitrary traces and (tiny) configurations;
//! - the TRS block allocator never double-allocates and always restores
//!   its free count.

use proptest::prelude::*;
use std::sync::Arc;

use task_superscalar::pipeline::assembly::{
    build_frontend, frontend_stats, instant_backend, InstantBackend,
};
use task_superscalar::pipeline::blocks::{blocks_for_operands, BlockStore};
use task_superscalar::pipeline::{FrontendConfig, Msg};
use task_superscalar::sim::Simulation;
use task_superscalar::trace::{
    validate_schedule, DepGraph, DepKind, Direction, OperandDesc, TaskTrace,
};

// ---------------------------------------------------------------------
// Trace strategy
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct OpSpec {
    obj: u8,
    dir: u8, // 0 = In, 1 = Out, 2 = InOut
}

fn trace_from_specs(specs: &[Vec<OpSpec>], runtimes: &[u32]) -> TaskTrace {
    let mut tr = TaskTrace::new("prop");
    let k = tr.add_kernel("k");
    for (ops, &rt) in specs.iter().zip(runtimes) {
        let mut seen = Vec::new();
        let mut operands = Vec::new();
        for op in ops {
            if seen.contains(&op.obj) {
                continue; // one operand per object per task
            }
            seen.push(op.obj);
            let addr = 0x10_0000 + op.obj as u64 * 0x1_0000;
            let dir = match op.dir {
                0 => Direction::In,
                1 => Direction::Out,
                _ => Direction::InOut,
            };
            operands.push(OperandDesc::memory(addr, 256, dir));
        }
        if operands.is_empty() {
            operands.push(OperandDesc::scalar(8));
        }
        tr.push_task(k, 100 + rt as u64, operands);
    }
    tr
}

fn arb_specs() -> impl Strategy<Value = (Vec<Vec<OpSpec>>, Vec<u32>)> {
    let op = (0u8..10, 0u8..3).prop_map(|(obj, dir)| OpSpec { obj, dir });
    let task = prop::collection::vec(op, 1..5);
    (1usize..60).prop_flat_map(move |n| {
        (prop::collection::vec(task.clone(), n..=n), prop::collection::vec(0u32..20_000, n..=n))
    })
}

// ---------------------------------------------------------------------
// Oracle vs brute force
// ---------------------------------------------------------------------

/// O(n²·ops²) recomputation of the enforced predecessor sets.
fn brute_force_preds(tr: &TaskTrace) -> Vec<Vec<usize>> {
    let n = tr.len();
    let mut preds = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // a/b index two task positions
    for b in 0..n {
        'a_loop: for a in 0..b {
            for ob in tr.task(b).operands.iter().filter(|o| o.is_tracked()) {
                for oa in tr.task(a).operands.iter().filter(|o| o.is_tracked()) {
                    if oa.addr != ob.addr {
                        continue;
                    }
                    // RaW: b reads what a wrote, with no intervening
                    // writer between a and b.
                    let intervening_writer = ((a + 1)..b).any(|m| {
                        tr.task(m)
                            .operands
                            .iter()
                            .any(|o| o.is_tracked() && o.addr == ob.addr && o.dir.writes())
                    });
                    if ob.dir.reads() && oa.dir.writes() && !intervening_writer {
                        preds[b].push(a);
                        continue 'a_loop;
                    }
                    // InoutAnti: b is an inout writer; a read the version
                    // b supersedes (a's read not invalidated by a writer
                    // in between).
                    if ob.dir == Direction::InOut && oa.dir.reads() && !intervening_writer {
                        preds[b].push(a);
                        continue 'a_loop;
                    }
                }
            }
        }
    }
    for p in &mut preds {
        p.sort_unstable();
        p.dedup();
    }
    preds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn oracle_matches_brute_force((specs, rts) in arb_specs()) {
        let tr = trace_from_specs(&specs, &rts);
        let g = DepGraph::from_trace(&tr);
        let brute = brute_force_preds(&tr);
        for (t, expected) in brute.iter().enumerate() {
            prop_assert_eq!(g.preds(t), &expected[..], "task {} preds mismatch", t);
        }
        // Edge kinds are consistent: enforced edges are RaW/InoutAnti.
        for e in g.edges() {
            prop_assert_eq!(
                e.kind.enforced(),
                matches!(e.kind, DepKind::RaW | DepKind::InoutAnti)
            );
        }
    }

    #[test]
    fn pipeline_schedules_always_satisfy_the_oracle(
        (specs, rts) in arb_specs(),
        num_trs in 1usize..4,
        num_ort in 1usize..3,
    ) {
        let tr = trace_from_specs(&specs, &rts);
        let cfg = FrontendConfig {
            num_trs,
            num_ort,
            trs_total_bytes: 32 << 10,
            ort_total_bytes: 8 << 10,
            ovt_total_bytes: 8 << 10,
            ..FrontendConfig::default()
        };
        let trace = Arc::new(tr);
        let mut sim = Simulation::<Msg>::new();
        let topo = build_frontend(&mut sim, trace.clone(), &cfg, instant_backend);
        sim.run();
        let backend = sim.component::<InstantBackend>(topo.backend);
        prop_assert_eq!(backend.completed() as usize, trace.len(), "deadlock");
        let g = DepGraph::from_trace(&trace);
        prop_assert!(validate_schedule(&g, backend.schedule()).is_ok());
        let stats = frontend_stats(&sim, &topo, &cfg);
        prop_assert_eq!(stats.leaked_tasks, 0, "leaked frontend state");
        prop_assert_eq!(stats.tasks_decoded as usize, trace.len());
    }

    #[test]
    fn block_store_conserves_blocks(
        sizes in prop::collection::vec(0usize..20, 1..40),
        total in 16u32..256,
    ) {
        let mut store = BlockStore::new(total, 22);
        let mut live: Vec<Vec<u32>> = Vec::new();
        let mut allocated = 0u32;
        for (i, &ops) in sizes.iter().enumerate() {
            let need = blocks_for_operands(ops.min(19));
            match store.alloc(need) {
                Some(a) => {
                    prop_assert_eq!(a.blocks.len() as u32, need);
                    allocated += need;
                    live.push(a.blocks);
                }
                None => {
                    prop_assert!(allocated + need > total, "spurious rejection");
                }
            }
            // Free every other allocation eagerly.
            if i % 2 == 0 {
                if let Some(blocks) = live.pop() {
                    allocated -= blocks.len() as u32;
                    store.free(&blocks);
                }
            }
        }
        for blocks in live.drain(..) {
            store.free(&blocks);
        }
        prop_assert_eq!(store.free_count(), total);
        prop_assert_eq!(store.allocated_count(), 0);
    }

    #[test]
    fn parallel_makespan_never_beats_critical_path(
        (specs, rts) in arb_specs(),
    ) {
        let tr = trace_from_specs(&specs, &rts);
        let g = DepGraph::from_trace(&tr);
        let profile = task_superscalar::trace::parallelism_profile(&tr, &g);
        let trace = Arc::new(tr);
        let mut sim = Simulation::<Msg>::new();
        let cfg = FrontendConfig::default();
        let topo = build_frontend(&mut sim, trace.clone(), &cfg, instant_backend);
        sim.run();
        let backend = sim.component::<InstantBackend>(topo.backend);
        let makespan = backend.schedule().iter().map(|r| r.end).max().unwrap_or(0);
        prop_assert!(
            makespan >= profile.critical_path,
            "makespan {} < critical path {}", makespan, profile.critical_path
        );
    }
}
