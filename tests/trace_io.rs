//! Integration: trace serialization round-trips every benchmark, and a
//! reloaded trace drives the pipeline to the identical schedule.

use proptest::prelude::*;
use task_superscalar::core::SystemBuilder;
use task_superscalar::trace::{from_text, to_text};
use task_superscalar::workloads::{Benchmark, Scale};

#[test]
fn every_benchmark_round_trips_through_text() {
    for b in Benchmark::all() {
        let tr = b.trace(Scale::Small, 3);
        let text = to_text(&tr);
        let back = from_text(&text).unwrap_or_else(|e| panic!("{b}: {e}"));
        assert_eq!(back.tasks(), tr.tasks(), "{b} tasks changed in round trip");
        assert_eq!(back.name(), tr.name());
        assert_eq!(back.kernel_count(), tr.kernel_count());
    }
}

#[test]
fn reloaded_trace_reproduces_the_simulation_exactly() {
    let tr = Benchmark::Stap.trace(Scale::Small, 9);
    let reloaded = from_text(&to_text(&tr)).expect("parse");
    let a = SystemBuilder::new().processors(32).run_hardware(&tr);
    let b = SystemBuilder::new().processors(32).run_hardware(&reloaded);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.decode_rate_cycles, b.decode_rate_cycles);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn to_text_after_from_text_is_byte_identical_for_all_benchmarks(seed in 1u32..10_000) {
        // `to_text ∘ from_text` must be the identity on serialized
        // traces: the text format is part of the reproduction surface,
        // so a parse→print cycle may not reformat a single byte, for
        // any of the nine workloads at any seed.
        for b in Benchmark::all() {
            let text = to_text(&b.trace(Scale::Small, seed as u64));
            let reparsed = match from_text(&text) {
                Ok(tr) => tr,
                Err(e) => return Err(TestCaseError::fail(format!("{b} seed {seed}: {e}"))),
            };
            prop_assert_eq!(
                &to_text(&reparsed),
                &text,
                "{} seed {}: parse->print changed bytes", b, seed
            );
        }
    }
}

#[test]
fn text_format_is_stable_for_a_fixed_seed() {
    // The serialized trace is part of the reproduction surface: it must
    // not drift between runs of the same generator and seed.
    let x = to_text(&Benchmark::Fft.trace(Scale::Small, 1));
    let y = to_text(&Benchmark::Fft.trace(Scale::Small, 1));
    assert_eq!(x, y);
    assert!(x.starts_with("# task-superscalar trace v1\ntrace FFT\n"));
}
