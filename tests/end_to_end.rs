//! Workspace-spanning integration tests: every Table-I benchmark runs
//! end-to-end through the hardware pipeline and the software runtime,
//! with full oracle validation, on CI-sized traces.

use std::sync::Arc;

use task_superscalar::core::SystemBuilder;
use task_superscalar::trace::DepGraph;
use task_superscalar::workloads::{Benchmark, Scale};

#[test]
fn every_benchmark_completes_and_validates_on_hardware() {
    for b in Benchmark::all() {
        let trace = b.trace(Scale::Small, 11);
        // Validation is on by default: run_hardware panics on any oracle
        // violation or leaked frontend state.
        let report = SystemBuilder::new().processors(64).run_hardware(&trace);
        assert_eq!(report.tasks, trace.len(), "{b}");
        assert!(report.speedup() > 1.0, "{b}: speedup {}", report.speedup());
        assert!(report.decode_rate_cycles > 0.0, "{b}");
    }
}

#[test]
fn every_benchmark_completes_and_validates_on_software() {
    for b in Benchmark::all() {
        let trace = b.trace(Scale::Small, 11);
        let report = SystemBuilder::new().processors(64).run_software(&trace);
        assert_eq!(report.tasks, trace.len(), "{b}");
        assert!(report.speedup() > 1.0, "{b}");
    }
}

#[test]
fn runs_are_deterministic() {
    let trace = Benchmark::Fft.trace(Scale::Small, 3);
    let a = SystemBuilder::new().processors(32).run_hardware(&trace);
    let b = SystemBuilder::new().processors(32).run_hardware(&trace);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.schedule, b.schedule);
}

#[test]
fn simulator_completion_order_is_a_valid_topological_order() {
    // The same oracle check the native executor (`tss-exec`) runs on
    // every replay, applied to the simulator: the hardware pipeline's
    // completion sequence (schedule sorted by end cycle) must linearize
    // the enforced dependency graph. Ties can only involve independent
    // tasks (runtimes are positive), so any tie-break is valid.
    for b in [Benchmark::Cholesky, Benchmark::H264, Benchmark::KMeans] {
        let trace = Arc::new(b.trace(Scale::Small, 17));
        let report = SystemBuilder::new().processors(64).run_hardware_arc(&trace);
        let mut by_completion = report.schedule.clone();
        by_completion.sort_by_key(|r| (r.end, r.start, r.task));
        let order: Vec<usize> = by_completion.iter().map(|r| r.task).collect();
        let graph = DepGraph::from_trace(&trace);
        graph
            .validate_order(&order)
            .unwrap_or_else(|v| panic!("{b}: simulator completion order invalid: {v}"));
    }
}

#[test]
fn hardware_decode_rate_beats_software_by_an_order_of_magnitude() {
    // Section II's core claim. Measured at the paper operating point.
    let trace = Benchmark::Cholesky.trace(Scale::Small, 5);
    let hw = SystemBuilder::new().processors(256).run_hardware(&trace);
    let sw = SystemBuilder::new().processors(256).run_software(&trace);
    assert!(
        hw.decode_rate_ns() < 100.0,
        "hardware decode {} ns should be well under 100 ns",
        hw.decode_rate_ns()
    );
    assert!(
        sw.decode_rate_ns() > 600.0,
        "software decode {} ns should be ~700 ns",
        sw.decode_rate_ns()
    );
}

#[test]
fn renaming_ablation_hurts_write_heavy_workloads() {
    // KMeans writes fresh partials constantly; disabling renaming turns
    // WaR/WaW into serialization.
    let trace = Benchmark::KMeans.trace(Scale::Small, 7);
    let with = SystemBuilder::new().processors(64).run_hardware(&trace);
    let without = SystemBuilder::new()
        .processors(64)
        .with_frontend(|f| f.renaming = false)
        .run_hardware(&trace);
    assert!(
        with.speedup() >= without.speedup(),
        "renaming on: {:.1}, off: {:.1}",
        with.speedup(),
        without.speedup()
    );
}

#[test]
fn window_peak_reflects_trs_capacity() {
    let trace = Benchmark::Stap.trace(Scale::Small, 9);
    let small = SystemBuilder::new()
        .processors(32)
        .with_frontend(|f| f.trs_total_bytes = 64 << 10) // 512 blocks
        .run_hardware(&trace);
    let large = SystemBuilder::new().processors(32).run_hardware(&trace);
    assert!(small.window_peak <= 512, "64 KB of TRS cannot hold more than 512 single-block tasks");
    assert!(large.window_peak >= small.window_peak);
}

#[test]
fn chains_stay_short_as_the_paper_reports() {
    // Section IV.B.2: "chains are typically very short: for all but two
    // of the benchmarks, 95% of the chains are no more than 2 tasks".
    // Chain forwards per consumer registration is the observable here:
    // most data-readies must arrive directly, not via long forwarding.
    let trace = Benchmark::Cholesky.trace(Scale::Small, 13);
    let report = SystemBuilder::new().processors(64).run_hardware(&trace);
    let fe = report.frontend.expect("hardware run has frontend stats");
    let forwards_per_task = fe.chain_forwards as f64 / report.tasks as f64;
    assert!(
        forwards_per_task < 3.0,
        "forwarding should be rare on Cholesky: {forwards_per_task:.2} per task"
    );
}

#[test]
fn storage_waste_is_near_twenty_percent() {
    // Figure 11 discussion: "the average waste is only ~20% of the
    // allocated memory".
    let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
    let report = SystemBuilder::new().processors(32).run_hardware(&trace);
    let fe = report.frontend.expect("frontend stats");
    assert!((0.08..0.45).contains(&fe.avg_storage_waste), "waste {:.2}", fe.avg_storage_waste);
}

#[test]
fn sequential_equivalence_total_work_is_invariant() {
    // The speedup denominator (sequential time) must not depend on the
    // engine: both reports agree on total_work.
    let trace = Benchmark::Pbpi.trace(Scale::Small, 21);
    let hw = SystemBuilder::new().processors(32).run_hardware(&trace);
    let sw = SystemBuilder::new().processors(32).run_software(&trace);
    assert_eq!(hw.total_work, sw.total_work);
    assert_eq!(hw.total_work, trace.total_runtime());
}

#[test]
fn single_processor_hardware_approaches_sequential() {
    let trace = Benchmark::MatMul.trace(Scale::Small, 2);
    let report = SystemBuilder::new().processors(1).run_hardware(&trace);
    let s = report.speedup();
    assert!(
        (0.85..=1.01).contains(&s),
        "1-core speedup must be ~1.0 (decode overlaps execution): {s}"
    );
}
