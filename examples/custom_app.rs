//! Writing your own StarSs-style application against the library API:
//! annotate kernel operands with directions, emit tasks in sequential
//! program order, and let the pipeline uncover the parallelism.
//!
//! The "application" here is a tiled 1D heat diffusion: each step, every
//! tile is advanced from its own state plus its neighbours' boundary
//! values — a miniature of how SPECFEM is expressed in the paper.
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use task_superscalar::prelude::*;
use task_superscalar::sim::us_to_cycles as us;

fn main() {
    const TILES: usize = 64;
    const STEPS: usize = 40;
    const TILE_BYTES: u32 = 48 << 10; // L1-sized, as Section II insists
    const HALO_BYTES: u32 = 1 << 10;

    // --- the "program": a sequential loop emitting annotated tasks ----
    let mut trace = TaskTrace::new("heat1d");
    let advance = trace.add_kernel("advance_tile");

    // Object addresses: one state object per tile, double-buffered halos.
    let tile_addr = |i: usize| 0x1000_0000u64 + ((i as u64) << 20);
    let halo_addr = |parity: usize, i: usize| {
        0x9000_0000u64 + (parity as u64 * TILES as u64 + i as u64) * 0x1000
    };

    for t in 0..STEPS {
        let (read_p, write_p) = ((t + 1) % 2, t % 2);
        for i in 0..TILES {
            let mut ops = vec![OperandDesc::inout(tile_addr(i), TILE_BYTES)];
            if t > 0 {
                if i > 0 {
                    ops.push(OperandDesc::input(halo_addr(read_p, i - 1), HALO_BYTES));
                }
                if i + 1 < TILES {
                    ops.push(OperandDesc::input(halo_addr(read_p, i + 1), HALO_BYTES));
                }
            }
            ops.push(OperandDesc::output(halo_addr(write_p, i), HALO_BYTES));
            ops.push(OperandDesc::scalar(8)); // dt
            trace.push_task(advance, us(20.0), ops);
        }
    }
    println!("heat1d: {} tasks emitted by a sequential loop", trace.len());

    // --- what parallelism did the annotations expose? -----------------
    let graph = DepGraph::from_trace(&trace);
    let profile = task_superscalar::trace::parallelism_profile(&trace, &graph);
    println!(
        "dependency graph: {} enforced edges; avg parallelism {:.1} (one step = {TILES} tiles)",
        graph.enforced_edge_count(),
        profile.avg_parallelism
    );

    // --- run it on three machine sizes --------------------------------
    for p in [16, 64, 128] {
        let report = SystemBuilder::new().processors(p).run_hardware(&trace);
        println!(
            "{p:>4} cores: speedup {:>6.1}x  (decode {:>3.0} ns/task, window peak {})",
            report.speedup(),
            report.decode_rate_ns(),
            report.window_peak
        );
    }
    println!("\nThe sequential source order never changes; the pipeline extracts");
    println!("the wavefront parallelism from the operand annotations alone.");
}
