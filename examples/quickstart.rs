//! Quickstart: build the paper's Figure-1 task graph (blocked Cholesky
//! of a 5×5 matrix, 35 tasks), inspect it, and run it through the
//! hardware task superscalar pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use task_superscalar::prelude::*;
use task_superscalar::workloads::cholesky::CholeskyGen;

fn main() {
    // ----------------------------------------------------------------
    // 1. The task graph of Figure 1.
    // ----------------------------------------------------------------
    let trace = CholeskyGen::new(5).generate(1);
    println!("Cholesky 5x5 -> {} tasks (Figure 1 shows 35)", trace.len());

    let graph = DepGraph::from_trace(&trace);
    println!(
        "enforced dependencies: {}, WaR/WaW removed by renaming: {}",
        graph.enforced_edge_count(),
        graph.edges_removed_by_renaming()
    );
    // The paper highlights that tasks 6 and 23 (creation order) are
    // independent — distant parallelism inside an irregular graph.
    let (a, b) = (5, 22); // 0-based
    println!("tasks 6 and 23 independent? {}", !graph.reachable(a, b) && !graph.reachable(b, a));

    // Emit the graph in Graphviz DOT (pipe into `dot -Tpng`).
    println!("\n--- figure1.dot ---\n{}", graph.to_dot(&trace));

    // ----------------------------------------------------------------
    // 2. Run it out-of-order on a 32-core CMP.
    // ----------------------------------------------------------------
    let report = SystemBuilder::new().processors(32).run_hardware(&trace);
    println!(
        "hardware pipeline: makespan {} cycles ({:.1} us), speedup {:.2}x over sequential",
        report.makespan,
        cycles_to_us(report.makespan),
        report.speedup()
    );
    println!(
        "decode rate: {:.0} cycles/task ({:.0} ns), peak window: {} tasks",
        report.decode_rate_cycles,
        report.decode_rate_ns(),
        report.window_peak
    );

    // ----------------------------------------------------------------
    // 3. Compare with the ideal dataflow bound.
    // ----------------------------------------------------------------
    let profile = task_superscalar::trace::parallelism_profile(&trace, &graph);
    println!(
        "graph: critical path {:.1} us, average parallelism {:.1}, max width {}",
        cycles_to_us(profile.critical_path),
        profile.avg_parallelism,
        profile.max_width
    );
}
