//! Per-message-type cost profile of a hardware-pipeline run — a worked
//! example of wrapping the monomorphized `SystemStore` in a delegating
//! [`ComponentStore`] (ISSUE 5): the engine is store-generic, so
//! instrumentation composes without touching the event loop.
//!
//! Usage: `cargo run --release --example msg_profile [bench] [scale]`
//! (defaults: H264, paper).

use std::sync::Arc;
use std::time::Instant;

use task_superscalar::backend::{cmp_backend, BackendConfig};
use task_superscalar::core::SystemStore;
use task_superscalar::pipeline::assembly::build_frontend;
use task_superscalar::pipeline::{FrontendConfig, Msg};
use task_superscalar::sim::{ComponentId, ComponentStore, Context, Extract, Insert, Simulation};
use task_superscalar::workloads::{Benchmark, Scale};

const KINDS: usize = 20;

fn kind_of(msg: &Msg) -> usize {
    match msg {
        Msg::SubmitTask { .. } => 0,
        Msg::GatewayCredit { .. } => 1,
        Msg::GeneratorTick => 2,
        Msg::GatewayWork => 3,
        Msg::AllocTask { .. } => 4,
        Msg::AllocReply { .. } => 5,
        Msg::TrsHasSpace { .. } => 6,
        Msg::DecodeOperand { .. } => 7,
        Msg::OrtWork => 8,
        Msg::OrtStalled { .. } => 9,
        Msg::OrtResumed { .. } => 10,
        Msg::ScalarOperand { .. } => 11,
        Msg::OperandInfo { .. } => 12,
        Msg::DataReady { .. } => 13,
        Msg::RegisterConsumer { .. } => 14,
        Msg::ReleaseUse { .. } => 15,
        Msg::TaskReady { .. } => 16,
        Msg::TaskFinished { .. } => 17,
        Msg::CoreDone { .. } => 18,
        _ => 19,
    }
}

const NAMES: [&str; KINDS] = [
    "SubmitTask",
    "GatewayCredit",
    "GeneratorTick",
    "GatewayWork",
    "AllocTask",
    "AllocReply",
    "TrsHasSpace",
    "DecodeOperand",
    "OrtWork",
    "OrtStalled",
    "OrtResumed",
    "ScalarOperand",
    "OperandInfo",
    "DataReady",
    "RegisterConsumer",
    "ReleaseUse",
    "TaskReady",
    "TaskFinished",
    "CoreDone",
    "other",
];

/// `SystemStore` plus per-kind delivery counters and handler spans.
#[derive(Default)]
struct ProfilingStore {
    inner: SystemStore,
    count: [u64; KINDS],
    nanos: [u64; KINDS],
}

impl ComponentStore<Msg> for ProfilingStore {
    fn deliver(&mut self, dst: ComponentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let k = kind_of(&msg);
        let t0 = Instant::now();
        self.inner.deliver(dst, msg, ctx);
        self.nanos[k] += t0.elapsed().as_nanos() as u64;
        self.count[k] += 1;
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<T> Insert<T> for ProfilingStore
where
    SystemStore: Insert<T>,
{
    fn insert(&mut self, c: T) -> usize {
        self.inner.insert(c)
    }
}

impl<T> Extract<T> for ProfilingStore
where
    SystemStore: Extract<T>,
{
    fn get(&self, index: usize) -> Option<&T> {
        self.inner.get(index)
    }
    fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.inner.get_mut(index)
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .map(|b| Benchmark::parse(&b).unwrap_or_else(|| panic!("unknown benchmark '{b}'")))
        .unwrap_or(Benchmark::H264);
    let scale = args
        .next()
        .map(|s| Scale::parse(&s).unwrap_or_else(|| panic!("unknown scale '{s}'")))
        .unwrap_or(Scale::Paper);
    let trace = Arc::new(bench.trace(scale, 42));
    let mut sim = Simulation::<Msg, ProfilingStore>::with_store(ProfilingStore::default());
    let cfg = FrontendConfig::default();
    build_frontend(&mut sim, trace, &cfg, cmp_backend(BackendConfig::for_cores(256)));
    let t0 = Instant::now();
    sim.run();
    let wall = t0.elapsed();

    // Rank by total handler span (timer overhead is charged to every
    // row equally; the table ranks, it does not gate).
    println!(
        "{bench} @ {scale:?}: {} events in {:.1} ms",
        sim.events_processed(),
        wall.as_secs_f64() * 1e3
    );
    println!("{:<18} {:>10} {:>10} {:>8}", "message", "count", "total ms", "ns/msg");
    let store = sim.store();
    let mut rows: Vec<usize> = (0..KINDS).collect();
    rows.sort_by_key(|&k| std::cmp::Reverse(store.nanos[k]));
    for k in rows {
        if store.count[k] == 0 {
            continue;
        }
        println!(
            "{:<18} {:>10} {:>10.1} {:>8.0}",
            NAMES[k],
            store.count[k],
            store.nanos[k] as f64 / 1e6,
            store.nanos[k] as f64 / store.count[k] as f64
        );
    }
}
