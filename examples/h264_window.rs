//! H.264 and the task-window size: the one benchmark whose *distant*
//! parallelism (inter-frame reference chains spanning up to 60 frames)
//! exceeds any practical hardware window — so the software runtime's
//! infinite window wins by a small margin at 256 processors
//! (Section VI.C).
//!
//! This example sweeps the TRS capacity (the window itself, Figure 15)
//! on an H264 trace and compares against the software runtime.
//!
//! ```text
//! cargo run --release --example h264_window
//! ```

use task_superscalar::core::experiments::trs_capacity_sweep;
use task_superscalar::core::Table;
use task_superscalar::prelude::*;
use task_superscalar::workloads::h264::H264Gen;

fn main() {
    // A moderate HD clip: 6 frames x 2040 macroblocks.
    let trace = H264Gen::hd(6).generate(7);
    println!("H264: {} macroblock tasks\n", trace.len());

    let mut table = Table::new(
        "H264 speedup vs TRS window capacity, 256 processors (cf. Figure 15)",
        &["TRS capacity", "speedup", "peak window (tasks)"],
    );
    let caps: Vec<u64> = [256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 6 << 20].to_vec();
    for pt in trs_capacity_sweep(&trace, &caps, 256, 1) {
        table.row(vec![
            format!("{} KB", pt.capacity_bytes >> 10),
            format!("{:.1}x", pt.speedup),
            pt.window_peak.to_string(),
        ]);
    }
    println!("{}", table.render());

    let sw = SystemBuilder::new().processors(256).skip_validation().run_software(&trace);
    println!(
        "software runtime (infinite window, 700 ns/task decode): {:.1}x\n\
         -> H264's 100 us-class tasks tolerate slow decode, and its distant\n\
         parallelism rewards the unbounded window (Section VI.C).",
        sw.speedup()
    );
}
