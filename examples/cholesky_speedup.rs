//! Blocked Cholesky scalability: the hardware pipeline vs the software
//! StarSs-like runtime on 32–256 cores (one panel of the paper's
//! Figure 16).
//!
//! ```text
//! cargo run --release --example cholesky_speedup
//! ```

use task_superscalar::core::Table;
use task_superscalar::prelude::*;
use task_superscalar::workloads::Scale;

fn main() {
    let trace = Benchmark::Cholesky.trace(Scale::Paper, 42);
    println!(
        "Cholesky: {} tasks, {:.1} ms sequential work\n",
        trace.len(),
        cycles_to_us(trace.total_runtime()) / 1000.0
    );

    let mut table = Table::new(
        "Cholesky speedup over sequential (cf. Figure 16)",
        &["processors", "hardware", "software", "hw/sw"],
    );
    for p in [32, 64, 128, 256] {
        let hw = SystemBuilder::new().processors(p).skip_validation().run_hardware(&trace);
        let sw = SystemBuilder::new().processors(p).skip_validation().run_software(&trace);
        table.row(vec![
            p.to_string(),
            format!("{:.1}x", hw.speedup()),
            format!("{:.1}x", sw.speedup()),
            format!("{:.2}", hw.speedup() / sw.speedup()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The software runtime decodes one task every ~700 ns, capping its\n\
         useful processor count; the pipeline decodes an order of magnitude\n\
         faster and keeps scaling (Section VI.C)."
    );
}
